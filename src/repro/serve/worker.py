"""Remote sweep worker: ``python -m repro serve --role worker --head URL``.

A worker node owns no queues and no jobs — it is a pull loop against a
head's lease API (:mod:`repro.serve.server`):

1. **lease** — ``POST /leases`` asks for a batch of up to
   ``lease_cells`` queued cells; an empty grant sleeps ``poll_s`` (the
   head's jittered ``retry_after_s`` hint, if longer) and retries.
2. **heartbeat** — a daemon thread extends the lease every ``ttl / 3``
   seconds while any cell of the batch is still executing.  A
   *rejected* heartbeat (head reaped the lease) flips the batch's
   ``lost`` flag: in-flight cells finish and still push — the head
   accepts late results for unresolved cells — but no new cell of the
   batch starts.  An *unreachable* head is different: connection
   failures are tolerated for ``head_outage_grace`` seconds, because a
   restarted head restores the lease from its journal.  Any other
   heartbeat exception marks the grant at-risk (instead of silently
   killing the thread) so unstarted cells are released for an early
   re-lease.
3. **execute** — each cell first tries the worker's *local* result
   cache, then ``GET /cells/<hash>`` on the head (cache warming), and
   only then simulates via the PR-7
   :func:`~repro.experiments.orchestrator.execute_cell` path (process
   isolation, timeout, retries) on a small thread pool.
4. **push** — every completed cell is pushed promptly
   (``POST /leases/<id>/results``), one outcome per call, so a worker
   killed mid-batch loses at most the cells it had not finished; the
   head replicates pushed artifacts into its own cache, which is what
   makes the next ``GET /cells/<hash>`` — and every future submission —
   a hit.  While the head is down, completed outcomes are buffered
   locally and re-pushed after reconnect (the journaled lease token is
   what makes a restarted head accept them).  An ack with
   ``lease_open=False`` means the head reaped the lease and requeued
   the leftovers: the worker abandons the batch.

Every head RPC rides out restarts with full-jitter exponential backoff
(:mod:`repro.serve.backoff`) bounded by ``--head-outage-grace``.
Shutdown is graceful: ``SIGTERM`` (or :meth:`WorkerNode.drain`)
finishes in-flight cells, pushes their results, and gives unstarted
lease cells back via ``POST /leases/<id>/release`` so the head requeues
them immediately instead of waiting out the lease TTL; ``--drain-on-idle
SECS`` exits the same way after the head has had no work for that long.

Failures ride the same wire: a cell that exhausts its local retries
pushes a structured error (PR-5 ``CellFailure`` kinds), and a worker
that dies without pushing is handled entirely head-side (lease expiry →
requeue → ``worker_lost`` after the retry budget).  The worker refuses
to start against a head speaking a different ``protocol_version``.
"""

from __future__ import annotations

import secrets
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.system import RunStats
from repro.experiments.orchestrator import (
    CellExecutionError,
    ResultCache,
    _failure_kind,
    execute_cell,
)
from repro.experiments.spec import SimSpec
from repro.serve.backoff import Backoff, jittered
from repro.serve.client import ServeClient, ServeConnectionError, ServeError
from repro.serve.protocol import CellOutcome, LeaseGrant, ResultPush


def default_worker_id() -> str:
    """Host-qualified, collision-proof default worker name."""
    return f"{socket.gethostname()}-{secrets.token_hex(3)}"


@dataclass
class _BatchState:
    """Shared flag set by the heartbeat thread when the lease is gone."""

    lost: threading.Event = field(default_factory=threading.Event)


class WorkerNode:
    """One worker process: lease / heartbeat / execute / push."""

    def __init__(
        self,
        head_url: str,
        *,
        worker_id: Optional[str] = None,
        jobs: int = 2,
        lease_cells: int = 4,
        poll_s: float = 0.5,
        use_cache: bool = True,
        cache_dir: Optional[str] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        head_outage_grace: float = 60.0,
        drain_on_idle: Optional[float] = None,
        runner: Optional[Callable[[SimSpec], RunStats]] = None,
        client: Optional[ServeClient] = None,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.client = (
            client if client is not None
            else ServeClient.from_url(head_url, tenant="worker")
        )
        self.worker_id = worker_id or default_worker_id()
        self.jobs = max(1, jobs)
        self.lease_cells = max(1, lease_cells)
        self.poll_s = poll_s
        self.cache = ResultCache(cache_dir) if use_cache else None
        self.timeout_s = timeout_s
        self.retries = retries
        self.head_outage_grace = max(0.0, head_outage_grace)
        self.drain_on_idle = drain_on_idle
        self._runner = runner
        self._log = log or (lambda message: None)
        self._stop = threading.Event()
        self._head_down = threading.Event()
        self._unpushed: list[tuple[str, str, CellOutcome]] = []
        self._unpushed_lock = threading.Lock()
        #: Lifetime counters, mirrored into the CLI's shutdown line.
        self.counters = {
            "leases": 0,
            "cells_done": 0,
            "cells_failed": 0,
            "cells_local_cache": 0,
            "cells_head_cache": 0,
            "cells_simulated": 0,
            "cells_released": 0,
            "leases_lost": 0,
            "heartbeat_errors": 0,
            "push_rejected": 0,
            "results_buffered": 0,
            "results_repushed": 0,
        }

    def stop(self) -> None:
        self._stop.set()

    def drain(self) -> None:
        """Graceful shutdown: finish in-flight cells, push their results,
        release unstarted lease cells, then exit the run loop."""
        self._stop.set()

    # -- resilient transport ---------------------------------------------------

    def _rpc(self, what: str, fn: Callable, grace_s: Optional[float] = None):
        """Call ``fn``, riding out head outages with jittered backoff.

        Connection failures retry until ``grace_s`` (default
        ``head_outage_grace``) of wall clock has elapsed, then re-raise.
        Every other :class:`ServeError` passes straight through — those
        are answers, not outages.  A success clears the shared
        head-down latch that short-circuits in-batch pushes.
        """
        grace = self.head_outage_grace if grace_s is None else grace_s
        backoff = Backoff(base_s=0.2, cap_s=5.0)
        deadline: Optional[float] = None
        while True:
            try:
                result = fn()
            except ServeConnectionError:
                now = time.monotonic()
                if deadline is None:
                    deadline = now + grace
                if now >= deadline:
                    self._head_down.set()
                    raise
                delay = min(backoff.next_delay(), max(0.01, deadline - now))
                self._log(f"{what}: head unreachable; retrying in {delay:.1f}s")
                time.sleep(delay)
            else:
                self._head_down.clear()
                return result

    # -- cell execution --------------------------------------------------------

    def _resolve_cell(self, spec: SimSpec, spec_hash: str) -> CellOutcome:
        """Local cache -> head artifact -> simulate; never raises."""
        if self.cache is not None:
            hit = self.cache.get(spec)
            if hit is not None:
                self.counters["cells_local_cache"] += 1
                return CellOutcome(
                    spec_hash=spec_hash, stats=hit, simulated=False
                )
            try:
                artifact = self.client.artifact(spec_hash)
                stats = RunStats.from_dict(artifact["stats"])
            except (ServeError, KeyError, TypeError, ValueError):
                pass  # not on the head either; simulate below
            else:
                self.cache.put(spec, stats)
                self.counters["cells_head_cache"] += 1
                return CellOutcome(
                    spec_hash=spec_hash, stats=stats, simulated=False
                )
        try:
            if self._runner is not None:
                stats = self._runner(spec)
            else:
                stats = execute_cell(
                    spec, timeout_s=self.timeout_s, retries=self.retries
                )
        except CellExecutionError as exc:
            return CellOutcome(spec_hash=spec_hash, error={
                "kind": exc.kind,
                "message": exc.message,
                "attempts": exc.attempts,
            })
        except Exception as exc:  # injected-runner failures
            return CellOutcome(spec_hash=spec_hash, error={
                "kind": _failure_kind(exc),
                "message": f"{type(exc).__name__}: {exc}",
                "attempts": 1,
            })
        if self.cache is not None:
            self.cache.put(spec, stats)
        self.counters["cells_simulated"] += 1
        return CellOutcome(spec_hash=spec_hash, stats=stats)

    # -- lease handling --------------------------------------------------------

    def _heartbeat_loop(self, grant: LeaseGrant, state: _BatchState) -> None:
        interval = max(0.05, grant.ttl_s / 3)
        failing_since: Optional[float] = None
        while not state.lost.wait(interval):
            try:
                self.client.heartbeat(grant.lease_id, grant.token)
            except ServeConnectionError:
                # The head is down, not the lease: a restarted head
                # restores the lease (fresh TTL) from its journal, so
                # keep executing and tolerate this within the grace.
                now = time.monotonic()
                if failing_since is None:
                    failing_since = now
                if now - failing_since >= self.head_outage_grace:
                    self.counters["leases_lost"] += 1
                    state.lost.set()
                    return
            except ServeError:
                # Definitive rejection (reaped lease, token mismatch):
                # stop starting new cells; cells already executing
                # still push (late results are accepted while the cell
                # is unresolved head-side).
                self.counters["leases_lost"] += 1
                state.lost.set()
                return
            except Exception as exc:
                # A heartbeat crash must not die silently: mark the
                # grant at-risk so the batch stops expanding and its
                # unstarted cells are released for an early re-lease.
                self.counters["heartbeat_errors"] += 1
                self._log(
                    f"heartbeat for {grant.lease_id} crashed: "
                    f"{type(exc).__name__}: {exc}; marking lease at risk"
                )
                state.lost.set()
                return
            else:
                failing_since = None

    def _buffer(self, grant: LeaseGrant, outcome: CellOutcome) -> None:
        with self._unpushed_lock:
            self._unpushed.append((grant.lease_id, grant.token, outcome))
        self.counters["results_buffered"] += 1
        self._log(
            f"buffered result for {outcome.spec_hash[:12]} "
            f"(head down; will re-push after reconnect)"
        )

    def _push(self, grant: LeaseGrant, outcome: CellOutcome,
              state: _BatchState) -> None:
        if self._head_down.is_set():
            self._buffer(grant, outcome)
            return
        push = ResultPush(
            token=grant.token,
            outcomes=(outcome,),
            worker_id=self.worker_id,
        )
        try:
            ack = self._rpc(
                f"push {outcome.spec_hash[:12]}",
                lambda: self.client.push_results(grant.lease_id, push),
            )
        except ServeConnectionError:
            self._buffer(grant, outcome)
            return
        except ServeError as exc:
            self._log(f"push rejected for {outcome.spec_hash[:12]}: {exc}")
            self.counters["push_rejected"] += 1
            state.lost.set()
            return
        if outcome.error is None:
            self.counters["cells_done"] += 1
        else:
            self.counters["cells_failed"] += 1
        if not ack.lease_open:
            state.lost.set()

    def _flush_unpushed(self) -> None:
        """Re-push outcomes buffered while the head was unreachable."""
        while True:
            with self._unpushed_lock:
                if not self._unpushed:
                    return
                lease_id, token, outcome = self._unpushed[0]
            push = ResultPush(
                token=token, outcomes=(outcome,), worker_id=self.worker_id
            )
            try:
                self.client.push_results(lease_id, push)
            except ServeConnectionError:
                return  # still down; the lease loop keeps retrying
            except ServeError as exc:
                self._log(
                    f"buffered push rejected for "
                    f"{outcome.spec_hash[:12]}: {exc}"
                )
                self.counters["push_rejected"] += 1
            else:
                if outcome.error is None:
                    self.counters["cells_done"] += 1
                else:
                    self.counters["cells_failed"] += 1
                self.counters["results_repushed"] += 1
            with self._unpushed_lock:
                self._unpushed.pop(0)

    def _release(self, grant: LeaseGrant, spec_hashes: list[str]) -> None:
        """Give unstarted cells back so the head requeues them now."""
        try:
            ack = self._rpc(
                f"release {len(spec_hashes)} cell(s)",
                lambda: self.client.release(
                    grant.lease_id, grant.token, spec_hashes
                ),
                grace_s=min(5.0, self.head_outage_grace),
            )
        except ServeError as exc:
            # Reaped, restarted without this lease, or still down: the
            # head's lease TTL requeues these cells on its own.
            self._log(f"release failed for lease {grant.lease_id}: {exc}")
            return
        self.counters["cells_released"] += ack.released
        self._log(
            f"lease {grant.lease_id}: released {ack.released} "
            f"unstarted cell(s)"
        )

    def _run_batch(self, grant: LeaseGrant) -> None:
        self.counters["leases"] += 1
        state = _BatchState()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(grant, state),
            name=f"{self.worker_id}-heartbeat",
            daemon=True,
        )
        beat.start()
        unstarted: list[str] = []

        def run_cell(cell):
            # The pool may pick a queued cell up after the batch began
            # draining; refuse to start it (None = "never ran") so it is
            # released instead of racing future.cancel().
            if state.lost.is_set() or self._stop.is_set():
                return None
            return self._resolve_cell(cell.spec, cell.spec_hash)

        try:
            with ThreadPoolExecutor(
                max_workers=self.jobs,
                thread_name_prefix=f"{self.worker_id}-cell",
            ) as pool:
                submitted = []
                for cell in grant.cells:
                    if state.lost.is_set() or self._stop.is_set():
                        unstarted.append(cell.spec_hash)
                        continue
                    submitted.append((cell, pool.submit(run_cell, cell)))
                for cell, future in submitted:
                    draining = state.lost.is_set() or self._stop.is_set()
                    if draining and future.cancel():
                        unstarted.append(cell.spec_hash)
                        continue
                    outcome = future.result()
                    if outcome is None:
                        unstarted.append(cell.spec_hash)
                        continue
                    self._push(grant, outcome, state)
        finally:
            state.lost.set()  # stops the heartbeat thread
            beat.join(timeout=5.0)
        if unstarted:
            self._release(grant, unstarted)

    # -- main loop -------------------------------------------------------------

    def run(self, max_batches: Optional[int] = None) -> dict:
        """Pull-execute-push until stopped; returns the counters.

        ``max_batches`` bounds the number of *non-empty* grants (tests);
        None runs until :meth:`stop`/:meth:`drain`, ``drain_on_idle``
        seconds of continuous idleness, a head outage longer than
        ``head_outage_grace``, or the process dies.
        """
        health = self._rpc("protocol check", self.client.check_protocol)
        self._log(
            f"worker {self.worker_id}: attached to head "
            f"{self.client.host}:{self.client.port} "
            f"(protocol {health.get('protocol_version')}, "
            f"{self.jobs} local job(s), batch={self.lease_cells})"
        )
        batches = 0
        idle_since: Optional[float] = None
        try:
            while not self._stop.is_set():
                self._flush_unpushed()
                try:
                    grant = self._rpc("lease", lambda: self.client.lease(
                        self.worker_id, self.lease_cells
                    ))
                except ServeConnectionError as exc:
                    self._log(
                        f"head unreachable beyond the "
                        f"{self.head_outage_grace:.0f}s outage grace: "
                        f"{exc}; exiting"
                    )
                    break
                except ServeError as exc:
                    self._log(f"lease request failed: {exc}; retrying")
                    if self._stop.wait(max(self.poll_s, 1.0)):
                        break
                    continue
                if grant.is_empty:
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if (
                        self.drain_on_idle is not None
                        and now - idle_since >= self.drain_on_idle
                        and not self._unpushed
                    ):
                        self._log(
                            f"idle for {self.drain_on_idle:.0f}s; draining"
                        )
                        break
                    wait_s = max(self.poll_s, jittered(grant.retry_after_s))
                    if self._stop.wait(wait_s):
                        break
                    continue
                idle_since = None
                self._log(
                    f"lease {grant.lease_id}: {len(grant.cells)} cell(s), "
                    f"ttl {grant.ttl_s:.1f}s"
                )
                self._run_batch(grant)
                batches += 1
                if max_batches is not None and batches >= max_batches:
                    break
        finally:
            self._flush_unpushed()
        return dict(self.counters)


def run_worker(head_url: str, **kwargs) -> dict:
    """Build and run one :class:`WorkerNode` (the CLI body).

    Installs a ``SIGTERM`` handler (main thread only) that drains the
    node gracefully: in-flight cells finish and push, unstarted lease
    cells are released back to the head's queue.
    """
    node = WorkerNode(head_url, **kwargs)
    previous = None
    try:
        previous = signal.signal(
            signal.SIGTERM, lambda signum, frame: node.drain()
        )
    except ValueError:
        pass  # not on the main thread (embedded use): no handler
    try:
        return node.run()
    except KeyboardInterrupt:
        node.stop()
        return dict(node.counters)
    finally:
        if previous is not None:
            try:
                signal.signal(signal.SIGTERM, previous)
            except ValueError:
                pass

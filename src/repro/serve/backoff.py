"""Retry pacing shared by the serve clients and the remote worker.

One policy, three consumers: :class:`~repro.serve.client.ServeClient`
(idempotent-GET retries on transient resets), the worker's head-RPC
wrapper (lease/heartbeat/push surviving head restarts inside
``--head-outage-grace``), and the chaos suite (which needs the pacing
deterministic under an injected RNG).  The policy is classic
*exponential backoff with full jitter*: attempt ``n`` sleeps a uniform
draw from ``[0, min(cap, base * 2**n)]``, so a fleet of workers hammered
off a restarting head does not reconnect in lockstep.

:func:`jittered` spreads a server-suggested ``Retry-After`` the same
way (uniform in ``[value/2, value*1.5]``), so honoring backpressure
does not synchronize the very clients being shed.
"""

from __future__ import annotations

import random
from typing import Optional

#: Transient transport failures worth retrying on an idempotent request:
#: the peer dropped an established connection mid-exchange.  (A refused
#: connection is *not* here — nothing is listening; retrying that is an
#: outage-grace decision, not a transient-blip one.  Note that
#: ``http.client.RemoteDisconnected`` subclasses ``ConnectionResetError``.)
TRANSIENT_ERRORS = (ConnectionResetError, BrokenPipeError)


def jittered(
    value: float, rng: Optional[random.Random] = None, spread: float = 0.5
) -> float:
    """``value`` spread uniformly across ``[value*(1-spread), value*(1+spread)]``."""
    rng = rng or random
    lo = max(0.0, value * (1.0 - spread))
    hi = value * (1.0 + spread)
    return rng.uniform(lo, hi)


class Backoff:
    """Exponential backoff with full jitter.

    >>> pace = Backoff(base_s=0.1, cap_s=2.0)
    >>> delay = pace.next_delay()   # uniform in [0, 0.1]
    >>> delay = pace.next_delay()   # uniform in [0, 0.2] ... capped at 2.0
    >>> pace.reset()                # after a success

    ``rng`` takes any object with a ``uniform(a, b)`` method (a
    ``random.Random``, or a seeded stand-in from the chaos harness), so
    retry schedules can be made reproducible.
    """

    def __init__(
        self,
        base_s: float = 0.1,
        cap_s: float = 5.0,
        rng: Optional[random.Random] = None,
    ):
        if base_s <= 0:
            raise ValueError(f"base_s must be > 0, got {base_s}")
        if cap_s < base_s:
            raise ValueError(f"cap_s must be >= base_s, got {cap_s}")
        self.base_s = base_s
        self.cap_s = cap_s
        self._rng = rng or random
        self._attempt = 0

    @property
    def attempt(self) -> int:
        """Consecutive failures so far (0 after a reset)."""
        return self._attempt

    def reset(self) -> None:
        self._attempt = 0

    def next_delay(self) -> float:
        """The sleep before the next retry; advances the attempt count."""
        ceiling = min(self.cap_s, self.base_s * (2 ** self._attempt))
        self._attempt += 1
        return self._rng.uniform(0.0, ceiling)

"""Multi-tenant job store: the scheduling core of ``repro serve``.

The PR-2 orchestrator made every cell a pure function of its
``spec_hash`` with a content-addressed result cache — exactly the shape
of a shardable service.  This module turns that batch tool into an
async-submittable store:

* **submission** — a :class:`Job` is one tenant's grid of
  :class:`~repro.experiments.spec.SimSpec` cells; cache hits resolve at
  submit time, the rest enter the tenant's FIFO queue.
* **in-flight dedup** — cells are identified by ``spec_hash``; a spec
  already queued or running (for *any* tenant, or earlier in the same
  grid) is not enqueued again — the new cell subscribes to the in-flight
  execution and receives the same result (origin ``"deduped"``).
* **fair scheduling** — free worker slots are granted round-robin across
  tenants with queued work, so one tenant's 10,000-cell grid cannot
  starve another's smoke test.
* **backpressure** — :meth:`JobStore.submit` raises
  :class:`QueueFullError` once the number of *distinct* pending cells
  reaches ``max_pending``; the HTTP layer maps it to 429 + Retry-After.
* **structured failure** — failures carry the PR-5 ``CellFailure`` kinds
  ("error" | "timeout" | "crash" | "stall" | "deadlock" |
  "worker_lost") into per-cell error bodies and per-job
  ``failure_kinds`` health counters.
* **remote leases** — distributed workers
  (:mod:`repro.serve.worker`) pull batches of queued cells via
  :meth:`JobStore.grant_lease`, extend them with
  :meth:`JobStore.heartbeat`, and push results back through
  :meth:`JobStore.push_results` (which also replicates each artifact
  into the head's cache).  A reaper task requeues the cells of any
  lease whose TTL lapses — exactly once per reap — and converts retry
  exhaustion into structured ``worker_lost`` failures, so a
  ``kill -9``-ed worker can never silently drop a cell.  ``workers=0``
  runs the store head-only: cells wait for remote leases.
* **durability** — with a result cache attached, every submission,
  lease grant, terminal fold, and failure resolution is appended to a
  JSONL write-ahead log (:mod:`repro.serve.journal`) under the cache
  root.  :meth:`JobStore.recover` (run automatically by :meth:`start`)
  replays it after a head crash: resolved cells are re-served from the
  content-addressed cache, unresolved cells requeued, and open leases
  restored with their journaled tokens so in-flight workers neither
  double-execute nor lose their late pushes.  ``journal=False`` opts
  back into the purely in-memory store.

Everything runs on one asyncio event loop; the only threads are the
executor pool hosting the blocking per-cell worker processes
(:func:`repro.experiments.orchestrator.execute_cell`).  ``executor=
"inline"`` swaps the worker process for an in-thread ``run_spec`` call —
faster for tiny cells and the deterministic choice for tests.
"""

from __future__ import annotations

import asyncio
import os
import re
import secrets
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import AsyncIterator, Callable, Optional, Sequence

from repro.core.system import RunStats
from repro.experiments.orchestrator import (
    CellExecutionError,
    ResultCache,
    _failure_kind,
    execute_cell,
)
from repro.experiments.spec import SimSpec, run_spec
from repro.serve.journal import JOURNAL_NAME, Journal

#: Cell origins: how a delivered result was produced.
ORIGIN_CACHED = "cached"        # satisfied from the on-disk cache at submit
ORIGIN_SIMULATED = "simulated"  # this cell's job triggered the simulation
ORIGIN_DEDUPED = "deduped"      # rode along on another in-flight cell


#: Default lease TTL; a worker heartbeats at a fraction of this.
DEFAULT_LEASE_TTL_S = 15.0


class QueueFullError(RuntimeError):
    """Backpressure signal: the store's pending-cell limit is reached."""

    def __init__(self, pending: int, limit: int, retry_after_s: float):
        super().__init__(
            f"{pending} cell(s) pending >= limit {limit}; "
            f"retry after {retry_after_s:.1f}s"
        )
        self.pending = pending
        self.limit = limit
        self.retry_after_s = retry_after_s


class UnknownLeaseError(RuntimeError):
    """Heartbeat/push for a lease the head no longer tracks (or a bad
    token): it expired and was reaped, completed, or never existed."""

    def __init__(self, lease_id: str):
        super().__init__(f"no live lease {lease_id!r}")
        self.lease_id = lease_id


@dataclass
class CellRecord:
    """One cell of one job, through its lifecycle."""

    index: int
    spec: SimSpec
    spec_hash: str
    state: str = "queued"  # "queued" | "running" | "done" | "failed"
    origin: Optional[str] = None
    stats: Optional[RunStats] = None
    error: Optional[dict] = None  # {"kind", "message", "attempts"}
    worker: Optional[str] = None  # remote worker currently leasing it

    def status_dict(self) -> dict:
        data = {
            "index": self.index,
            "spec_hash": self.spec_hash,
            "label": self.spec.label(),
            "state": self.state,
        }
        if self.origin is not None:
            data["origin"] = self.origin
        if self.error is not None:
            data["error"] = dict(self.error)
        if self.worker is not None:
            data["worker"] = self.worker
        return data


class Job:
    """Handle to one submitted grid; all methods run on the store's loop."""

    def __init__(self, job_id: str, tenant: str, specs: Sequence[SimSpec]):
        self.job_id = job_id
        self.tenant = tenant
        self.cells = [
            CellRecord(index=i, spec=spec, spec_hash=spec.spec_hash())
            for i, spec in enumerate(specs)
        ]
        self.created_at = time.time()
        self._started = time.monotonic()
        self.elapsed_s: Optional[float] = None
        self.failure_kinds: dict[str, int] = {}
        self.event_log: list[dict] = []
        self._done = asyncio.Event()
        self._changed = asyncio.Event()

    # -- state -----------------------------------------------------------------

    @property
    def is_done(self) -> bool:
        return self._done.is_set()

    def _count(self, *states: str) -> int:
        return sum(1 for cell in self.cells if cell.state in states)

    def _count_origin(self, origin: str) -> int:
        return sum(1 for cell in self.cells if cell.origin == origin)

    def snapshot(self, detail: bool = True) -> dict:
        data = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": "done" if self.is_done else "running",
            "cells": len(self.cells),
            "queued": self._count("queued"),
            "running": self._count("running"),
            "done": self._count("done"),
            "failed": self._count("failed"),
            "cached": self._count_origin(ORIGIN_CACHED),
            "deduped": self._count_origin(ORIGIN_DEDUPED),
            "simulated": self._count_origin(ORIGIN_SIMULATED),
            "failure_kinds": dict(self.failure_kinds),
            "created_at": self.created_at,
            "elapsed_s": (
                self.elapsed_s
                if self.elapsed_s is not None
                else time.monotonic() - self._started
            ),
        }
        if detail:
            data["cells_detail"] = [cell.status_dict() for cell in self.cells]
        return data

    def results_dict(self) -> dict:
        """Full results body: delivered stats plus structured failures."""
        results = []
        failures = []
        for cell in self.cells:
            if cell.state == "done" and cell.stats is not None:
                results.append({
                    "index": cell.index,
                    "spec": cell.spec.to_dict(),
                    "spec_hash": cell.spec_hash,
                    "origin": cell.origin,
                    "stats": cell.stats.to_dict(),
                })
            elif cell.state == "failed":
                failures.append({
                    "index": cell.index,
                    "spec": cell.spec.to_dict(),
                    "spec_hash": cell.spec_hash,
                    "error": dict(cell.error or {}),
                })
        data = self.snapshot(detail=False)
        data["results"] = results
        data["failures"] = failures
        return data

    # -- events ----------------------------------------------------------------

    def emit(self, event: dict) -> None:
        self.event_log.append(event)
        self._changed.set()

    def _cell_event(self, cell: CellRecord, with_stats: bool = True) -> dict:
        event = {"event": "cell", "job_id": self.job_id}
        event.update(cell.status_dict())
        if with_stats and cell.stats is not None:
            event["stats"] = cell.stats.to_dict()
        return event

    async def wait(self) -> dict:
        """Block until every cell resolved; returns the final snapshot."""
        await self._done.wait()
        return self.snapshot(detail=False)

    async def events(self) -> AsyncIterator[dict]:
        """Replay the event log, then follow live until the job is done."""
        index = 0
        while True:
            self._changed.clear()
            while index < len(self.event_log):
                yield self.event_log[index]
                index += 1
            if self.is_done:
                return
            await self._changed.wait()

    def _maybe_finish(self) -> None:
        if self.is_done or self._count("queued", "running"):
            return
        self.elapsed_s = time.monotonic() - self._started
        self.emit({"event": "done", **self.snapshot(detail=False)})
        self._done.set()


@dataclass
class _InFlight:
    """One distinct spec being executed; fan-in point for deduped cells."""

    spec: SimSpec
    spec_hash: str
    tenant: str  # tenant whose queue carries the execution
    subscribers: list[tuple[Job, int]] = field(default_factory=list)
    #: 1-based count of remote workers this cell has been leased to;
    #: drives the ``worker_lost`` retry budget when leases are reaped.
    worker_attempts: int = 0


@dataclass
class Lease:
    """A batch of cells granted to one remote worker, with a deadline."""

    lease_id: str
    token: str
    worker_id: str
    ttl_s: float
    deadline: float  # time.monotonic()
    entries: dict[str, _InFlight] = field(default_factory=dict)


class JobStore:
    """Async-submittable, multi-tenant front of the sweep orchestrator."""

    def __init__(
        self,
        *,
        workers: int = 2,
        max_pending: int = 1024,
        use_cache: bool = True,
        cache_dir: Optional[str] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        executor: str = "process",
        runner: Optional[Callable[[SimSpec], RunStats]] = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        worker_retries: int = 1,
        journal: bool = True,
    ):
        if executor not in ("process", "inline"):
            raise ValueError(
                f"executor must be 'process' or 'inline', got {executor!r}"
            )
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be > 0, got {lease_ttl_s}")
        #: 0 = head-only: no local execution, cells wait for remote leases.
        self.workers = workers
        self.max_pending = max_pending
        self.timeout_s = timeout_s
        self.retries = retries
        self.executor_kind = executor
        self.cache = ResultCache(cache_dir) if use_cache else None
        self._runner = runner
        self.lease_ttl_s = lease_ttl_s
        self.worker_retries = max(0, worker_retries)
        self._inflight: dict[str, _InFlight] = {}
        self._queues: dict[str, deque[_InFlight]] = {}
        self._tenant_order: deque[str] = deque()
        self._jobs: dict[str, Job] = {}
        self._leases: dict[str, Lease] = {}
        self._work = asyncio.Event()
        self._tasks: list[asyncio.Task] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._running = False
        self._job_counter = 0
        self._lease_counter = 0
        #: The durable WAL (only with a cache: stats live in its artifacts).
        self._journal: Optional[Journal] = None
        self._journal_enabled = journal and self.cache is not None
        self._recovering = False
        self._recovered = False
        self.totals = self._zero_totals()

    @staticmethod
    def _zero_totals() -> dict:
        return {
            "jobs_submitted": 0,
            "jobs_done": 0,
            "submissions_rejected": 0,
            "cells_delivered": 0,
            "cells_simulated": 0,
            "cells_cached": 0,
            "cells_deduped": 0,
            "cells_failed": 0,
            "cells_remote": 0,
            "cells_requeued": 0,
            "cells_released": 0,
            "leases_granted": 0,
            "leases_reaped": 0,
            "results_stale": 0,
            "jobs_recovered": 0,
            "cells_requeued_on_recovery": 0,
            "leases_restored": 0,
            "failure_kinds": {},
        }

    # -- lifecycle -------------------------------------------------------------

    @property
    def is_running(self) -> bool:
        return self._running

    async def start(self) -> "JobStore":
        if self._running:
            return self
        self._running = True
        if self._journal_enabled and not self._recovered:
            self.recover()
            self.compact_journal()
        if self.workers > 0:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-serve"
            )
            self._tasks = [
                asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
                for i in range(self.workers)
            ]
        self._tasks.append(
            asyncio.create_task(self._reaper(), name="serve-lease-reaper")
        )
        return self

    async def close(self) -> None:
        self._running = False
        self._work.set()  # wake idle workers so they observe the stop
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._journal is not None:
            self._journal.close()

    # -- durability ------------------------------------------------------------

    @property
    def journal_path(self) -> Optional[str]:
        """Where the WAL lives (under the cache root), or None if disabled."""
        if not self._journal_enabled or self.cache is None:
            return None
        return os.path.join(self.cache.root, JOURNAL_NAME)

    def _journal_append(self, *records: dict) -> None:
        if self._journal is not None and not self._recovering:
            self._journal.append(*records)

    def _journal_lease_closed(self, lease_id: str) -> None:
        self._journal_append({"rec": "lease_closed", "lease_id": lease_id})

    @staticmethod
    def _merge_totals(target: dict, source: dict) -> None:
        for key, value in source.items():
            if key == "failure_kinds" and isinstance(value, dict):
                kinds = target.setdefault("failure_kinds", {})
                for kind, count in value.items():
                    kinds[kind] = kinds.get(kind, 0) + int(count)
            elif isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                target[key] = target.get(key, 0) + value

    _ORIGIN_TOTALS = {
        ORIGIN_CACHED: "cells_cached",
        ORIGIN_SIMULATED: "cells_simulated",
        ORIGIN_DEDUPED: "cells_deduped",
    }

    def recover(self) -> dict:
        """Rebuild the store's state from the journal (head failover).

        Replays every journaled record into a *fresh* in-memory state:
        jobs are re-registered under their original ids, resolved cells
        are re-served from the content-addressed cache (a resolve whose
        artifact went missing is requeued instead — never trusted
        blindly), unresolved cells re-enter their tenants' queues with
        their ``worker_attempts`` budgets intact, and open leases are
        restored with their journaled tokens and a fresh full TTL — so
        a fast head restart neither double-executes a slow worker's
        batch nor rejects its late pushes.  ``/stats`` totals are
        rebuilt cumulatively (compaction baselines included), so
        counters like ``cells_simulated`` keep meaning "ever" across
        restarts.

        Replay starts from scratch every call, which makes it
        idempotent: recovering twice — or from a journal with
        duplicated records or a torn tail — lands in the same state as
        recovering once.  Returns the recovery counters (also surfaced
        in ``/stats``).
        """
        empty = {
            "jobs_recovered": 0,
            "cells_requeued_on_recovery": 0,
            "leases_restored": 0,
        }
        if not self._journal_enabled or self.cache is None:
            return empty
        if self._journal is None:
            self._journal = Journal(self.journal_path)
        records = self._journal.load()
        self._recovered = True
        # Reset every replayable piece of state: recovery is a startup
        # operation that rebuilds from scratch (that is what makes it
        # idempotent), not an incremental merge into live state.
        self._jobs.clear()
        self._inflight.clear()
        self._queues.clear()
        self._tenant_order.clear()
        self._leases.clear()
        self.totals = self._zero_totals()
        if not records:
            return empty
        self._recovering = True
        try:
            counters = self._replay(records)
        finally:
            self._recovering = False
        for key, value in counters.items():
            self.totals[key] = value
        return counters

    def _replay(self, records: Sequence[dict]) -> dict:
        # Pass 1: sort the log into per-kind views (last duplicate wins
        # for jobs/leases; resolves stay ordered).
        job_records: dict[str, dict] = {}
        resolves: list[dict] = []
        lease_records: dict[str, dict] = {}
        closed: set[str] = set()
        released: set[tuple[str, str]] = set()  # (lease_id, spec_hash)
        attempt_floors: dict[str, int] = {}
        totals_merged = False
        for record in records:
            kind = record.get("rec")
            if kind == "totals":
                # Compaction writes exactly one baseline; any further
                # copy is a duplicated record and must not double it.
                if not totals_merged:
                    self._merge_totals(
                        self.totals, record.get("totals") or {}
                    )
                    totals_merged = True
            elif kind == "job":
                if record.get("job_id") and isinstance(
                    record.get("specs"), list
                ):
                    job_records[record["job_id"]] = record
            elif kind == "resolve":
                resolves.append(record)
            elif kind == "lease":
                if record.get("lease_id"):
                    lease_records[record["lease_id"]] = record
            elif kind == "lease_closed":
                closed.add(record.get("lease_id"))
            elif kind == "release":
                # Keyed by (lease, hash): a lease can only release a
                # cell once, so duplicated records collapse here.
                for spec_hash in record.get("spec_hashes") or ():
                    released.add((record.get("lease_id"), spec_hash))
            elif kind == "attempts":
                for spec_hash, count in (record.get("cells") or {}).items():
                    attempt_floors[spec_hash] = max(
                        attempt_floors.get(spec_hash, 0), int(count)
                    )
            # unknown record kinds are skipped (forward compatibility)

        # Pass 2: rebuild jobs under their original ids.
        for job_id, record in job_records.items():
            try:
                specs = [
                    SimSpec.from_dict(item) for item in record["specs"]
                ]
            except (KeyError, TypeError, ValueError):
                continue  # unreadable job record: drop the whole job
            job = Job(job_id, record.get("tenant") or "default", specs)
            job.created_at = record.get("created_at", job.created_at)
            self._jobs[job_id] = job
            self.totals["jobs_submitted"] += 1
            job.emit({
                "event": "job",
                "job_id": job_id,
                "tenant": job.tenant,
                "cells": len(job.cells),
                "recovered": True,
            })

        # Pass 3: apply terminal folds; stats come from the cache, and a
        # missing artifact leaves the cell unresolved (requeued below).
        for record in resolves:
            ok = bool(record.get("ok"))
            error = record.get("error")
            if not ok and not isinstance(error, dict):
                error = {
                    "kind": "error",
                    "message": "journaled failure with no error body",
                    "attempts": 1,
                }
            stats: Optional[RunStats] = None
            counted_remote = False
            for ref in record.get("cells") or ():
                job = self._jobs.get(ref.get("job"))
                index = ref.get("index")
                if (
                    job is None
                    or not isinstance(index, int)
                    or not 0 <= index < len(job.cells)
                ):
                    continue
                cell = job.cells[index]
                if cell.state in ("done", "failed"):
                    continue  # duplicate record: replay stays idempotent
                if ok:
                    if stats is None:
                        stats = self.cache.get(cell.spec)
                    if stats is None:
                        continue  # artifact lost: re-execute instead
                    cell.state = "done"
                    cell.origin = ref.get("origin") or ORIGIN_DEDUPED
                    cell.stats = stats
                    if ref.get("worker"):
                        cell.worker = ref["worker"]
                    self.totals[
                        self._ORIGIN_TOTALS.get(cell.origin, "cells_deduped")
                    ] += 1
                    self.totals["cells_delivered"] += 1
                else:
                    cell.state = "failed"
                    cell.error = dict(error)
                    kind = cell.error.get("kind", "error")
                    job.failure_kinds[kind] = (
                        job.failure_kinds.get(kind, 0) + 1
                    )
                    kinds = self.totals["failure_kinds"]
                    kinds[kind] = kinds.get(kind, 0) + 1
                    self.totals["cells_failed"] += 1
                job.emit(job._cell_event(cell))
                if record.get("remote") and not counted_remote:
                    self.totals["cells_remote"] += 1
                    counted_remote = True

        # Pass 4: per-hash retry budgets — one attempt per granted lease,
        # minus graceful releases, floored by compaction snapshots.
        attempts: dict[str, int] = {}
        for record in lease_records.values():
            self.totals["leases_granted"] += 1
            for spec_hash in record.get("cells") or {}:
                attempts[spec_hash] = attempts.get(spec_hash, 0) + 1
        for __, spec_hash in released:
            attempts[spec_hash] = max(0, attempts.get(spec_hash, 0) - 1)
        # Compaction folds dropped release records into its baseline, so
        # counting the journaled ones here keeps the total cumulative.
        self.totals["cells_released"] += len(released)
        for spec_hash, floor in attempt_floors.items():
            attempts[spec_hash] = max(attempts.get(spec_hash, 0), floor)

        leased_hashes: dict[str, str] = {}
        for lease_id, record in lease_records.items():
            if lease_id in closed:
                continue
            for spec_hash in record.get("cells") or {}:
                leased_hashes[spec_hash] = lease_id

        # Pass 5: unresolved cells -> in-flight entries; cells of an open
        # lease stay leased (fresh full TTL), the rest are requeued.
        requeued = 0
        restored: dict[str, Lease] = {}
        for job in self._jobs.values():
            for cell in job.cells:
                if cell.state in ("done", "failed"):
                    continue
                entry = self._inflight.get(cell.spec_hash)
                if entry is None:
                    entry = _InFlight(
                        spec=cell.spec,
                        spec_hash=cell.spec_hash,
                        tenant=job.tenant,
                    )
                    entry.worker_attempts = attempts.get(cell.spec_hash, 0)
                    self._inflight[cell.spec_hash] = entry
                    lease_id = leased_hashes.get(cell.spec_hash)
                    if lease_id is not None:
                        lease = restored.get(lease_id)
                        if lease is None:
                            record = lease_records[lease_id]
                            ttl_s = float(
                                record.get("ttl_s") or self.lease_ttl_s
                            )
                            lease = restored[lease_id] = Lease(
                                lease_id=lease_id,
                                token=str(record.get("token") or ""),
                                worker_id=str(record.get("worker_id") or ""),
                                ttl_s=ttl_s,
                                deadline=time.monotonic() + ttl_s,
                            )
                        lease.entries[cell.spec_hash] = entry
                    else:
                        self._enqueue(job.tenant, entry)
                        requeued += 1
                entry.subscribers.append((job, cell.index))
        for lease in restored.values():
            self._leases[lease.lease_id] = lease
            for entry in lease.entries.values():
                for job, index in entry.subscribers:
                    cell = job.cells[index]
                    cell.state = "running"
                    cell.worker = lease.worker_id
                    job.emit(job._cell_event(cell))

        # Pass 6: restore id counters past everything journaled, close
        # out fully-resolved jobs, and report.
        for job_id in self._jobs:
            match = re.match(r"j(\d+)-", job_id)
            if match:
                self._job_counter = max(
                    self._job_counter, int(match.group(1))
                )
        for lease_id in lease_records:
            match = re.match(r"l(\d+)-", lease_id)
            if match:
                self._lease_counter = max(
                    self._lease_counter, int(match.group(1))
                )
        for job in self._jobs.values():
            job._maybe_finish()
            if job.is_done:
                self.totals["jobs_done"] += 1
        return {
            "jobs_recovered": len(self._jobs),
            "cells_requeued_on_recovery": requeued,
            "leases_restored": len(restored),
        }

    def compact_journal(self) -> int:
        """Rewrite the journal without fully-resolved jobs.

        The dropped records' counter contributions are folded into one
        leading ``totals`` baseline record, so recovery after compaction
        reports the same cumulative ``/stats`` totals.  Open jobs keep a
        job record plus grouped resolve records for their terminal
        cells; open leases keep their grant records (tokens included);
        queued cells with a spent retry budget keep it via an
        ``attempts`` record.  Returns the number of records written.
        """
        if self._journal is None:
            return 0
        baseline = {
            key: (dict(value) if isinstance(value, dict) else value)
            for key, value in self.totals.items()
        }
        # Recovery counters describe the last recovery, not history.
        for key in (
            "jobs_recovered", "cells_requeued_on_recovery", "leases_restored"
        ):
            baseline[key] = 0
        kept_jobs = [job for job in self._jobs.values() if not job.is_done]
        baseline["jobs_submitted"] -= len(kept_jobs)

        records: list[dict] = []
        for job in kept_jobs:
            records.append({
                "rec": "job",
                "job_id": job.job_id,
                "tenant": job.tenant,
                "created_at": job.created_at,
                "specs": [cell.spec.to_dict() for cell in job.cells],
            })
        by_hash: dict[str, dict] = {}
        for job in kept_jobs:
            for cell in job.cells:
                if cell.state == "done":
                    baseline["cells_delivered"] -= 1
                    baseline[
                        self._ORIGIN_TOTALS.get(cell.origin, "cells_deduped")
                    ] -= 1
                elif cell.state == "failed":
                    baseline["cells_failed"] -= 1
                    kind = (cell.error or {}).get("kind", "error")
                    kinds = baseline["failure_kinds"]
                    kinds[kind] = kinds.get(kind, 0) - 1
                else:
                    continue
                record = by_hash.get(cell.spec_hash)
                if record is None:
                    record = by_hash[cell.spec_hash] = {
                        "rec": "resolve",
                        "spec_hash": cell.spec_hash,
                        "ok": cell.state == "done",
                        "cells": [],
                    }
                    if cell.state == "failed" and cell.error is not None:
                        record["error"] = dict(cell.error)
                ref = {
                    "job": job.job_id,
                    "index": cell.index,
                    "origin": cell.origin,
                }
                if cell.worker:
                    ref["worker"] = cell.worker
                record["cells"].append(ref)
        for record in by_hash.values():
            if any(ref.get("worker") for ref in record["cells"]):
                record["remote"] = True
                baseline["cells_remote"] -= 1
        records.extend(by_hash.values())

        open_leases = [
            lease for lease in self._leases.values() if lease.entries
        ]
        baseline["leases_granted"] -= len(open_leases)
        leased = set()
        for lease in open_leases:
            records.append({
                "rec": "lease",
                "lease_id": lease.lease_id,
                "token": lease.token,
                "worker_id": lease.worker_id,
                "ttl_s": lease.ttl_s,
                "cells": {
                    spec_hash: entry.worker_attempts
                    for spec_hash, entry in lease.entries.items()
                },
            })
            leased.update(lease.entries)
        spent = {
            spec_hash: entry.worker_attempts
            for spec_hash, entry in self._inflight.items()
            if entry.worker_attempts > 0 and spec_hash not in leased
        }
        if spent:
            records.append({"rec": "attempts", "cells": spent})

        for key, value in list(baseline.items()):
            if (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and value < 0
            ):
                baseline[key] = 0
        baseline["failure_kinds"] = {
            kind: count
            for kind, count in baseline["failure_kinds"].items()
            if count > 0
        }
        out: list[dict] = []
        if any(
            value for key, value in baseline.items() if key != "failure_kinds"
        ) or baseline["failure_kinds"]:
            out.append({"rec": "totals", "totals": baseline})
        out.extend(records)
        self._journal.rewrite(out)
        return len(out)

    # -- submission ------------------------------------------------------------

    @property
    def pending_cells(self) -> int:
        """Distinct cells queued or running (the backpressure measure)."""
        return len(self._inflight)

    def retry_after_s(self) -> float:
        """Crude drain estimate used for the 429 Retry-After header."""
        drain = max(1, self.workers)  # head-only: assume one remote worker
        backlog = max(1, self.pending_cells - drain)
        return min(60.0, max(1.0, backlog / drain))

    def get_job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    async def submit(
        self, specs: Sequence[SimSpec], tenant: str = "default"
    ) -> Job:
        """Register a grid for ``tenant``; resolves/queues every cell.

        Raises :class:`QueueFullError` (leaving no state behind) when the
        cells that would *newly* enter the queue exceed the pending
        limit.  Cache hits and dedup subscriptions are always accepted —
        they consume no worker capacity.
        """
        if not self._running:
            raise RuntimeError("JobStore is not running; call start() first")
        self._job_counter += 1
        job = Job(
            f"j{self._job_counter:06d}-{secrets.token_hex(3)}",
            tenant,
            specs,
        )

        # Plan first (no mutation), so a full queue rejects atomically.
        cached: list[tuple[CellRecord, RunStats]] = []
        subscribe: list[CellRecord] = []
        fresh: dict[str, list[CellRecord]] = {}
        for cell in job.cells:
            hit = self.cache.get(cell.spec) if self.cache else None
            if hit is not None:
                cached.append((cell, hit))
            elif cell.spec_hash in self._inflight:
                subscribe.append(cell)
            else:
                fresh.setdefault(cell.spec_hash, []).append(cell)
        if self.pending_cells + len(fresh) > self.max_pending:
            self.totals["submissions_rejected"] += 1
            raise QueueFullError(
                self.pending_cells, self.max_pending, self.retry_after_s()
            )

        # Commit.
        self._jobs[job.job_id] = job
        self.totals["jobs_submitted"] += 1
        job.emit({
            "event": "job",
            "job_id": job.job_id,
            "tenant": tenant,
            "cells": len(job.cells),
            "cached_at_submit": len(cached),
        })
        for cell, stats in cached:
            cell.state = "done"
            cell.origin = ORIGIN_CACHED
            cell.stats = stats
            self.totals["cells_cached"] += 1
            self.totals["cells_delivered"] += 1
            job.emit(job._cell_event(cell))
        for cell in subscribe:
            self._inflight[cell.spec_hash].subscribers.append(
                (job, cell.index)
            )
        for spec_hash, cells in fresh.items():
            entry = _InFlight(
                spec=cells[0].spec, spec_hash=spec_hash, tenant=tenant
            )
            entry.subscribers.extend((job, cell.index) for cell in cells)
            self._inflight[spec_hash] = entry
            self._enqueue(tenant, entry)
        # Fully cache-hit grids are done before the 202 returns: there is
        # nothing to recover (the content-addressed cache IS their
        # durability) and compaction would drop them at the next boot
        # anyway, so skip the WAL — this keeps the warm submit path as
        # fast as an in-memory store.
        journal_worthy = bool(fresh or subscribe)
        if journal_worthy and self._journal is not None \
                and not self._recovering:
            records = [{
                "rec": "job",
                "job_id": job.job_id,
                "tenant": tenant,
                "created_at": job.created_at,
                "specs": [cell.spec.to_dict() for cell in job.cells],
            }]
            hits: dict[str, dict] = {}
            for cell, __ in cached:
                record = hits.setdefault(cell.spec_hash, {
                    "rec": "resolve",
                    "spec_hash": cell.spec_hash,
                    "ok": True,
                    "cells": [],
                })
                record["cells"].append({
                    "job": job.job_id,
                    "index": cell.index,
                    "origin": ORIGIN_CACHED,
                })
            records.extend(hits.values())
            self._journal.append(*records)
        job._maybe_finish()  # fully cache-hit grids complete immediately
        if job.is_done:
            self.totals["jobs_done"] += 1
        return job

    # -- scheduling ------------------------------------------------------------

    def _enqueue(self, tenant: str, entry: _InFlight) -> None:
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._tenant_order.append(tenant)
        queue.append(entry)
        self._work.set()

    def _next_entry(self) -> Optional[_InFlight]:
        """Round-robin pop across tenants with queued work."""
        for __ in range(len(self._tenant_order)):
            tenant = self._tenant_order[0]
            self._tenant_order.rotate(-1)
            queue = self._queues[tenant]
            if queue:
                entry = queue.popleft()
                if not queue:
                    del self._queues[tenant]
                    self._tenant_order.remove(tenant)
                return entry
        return None

    async def _worker(self) -> None:
        while self._running:
            entry = self._next_entry()
            if entry is None:
                self._work.clear()
                await self._work.wait()
                continue
            await self._execute(entry)

    # -- remote leases ---------------------------------------------------------

    def grant_lease(
        self, worker_id: str, max_cells: int = 4
    ) -> Optional[Lease]:
        """Pop up to ``max_cells`` queued cells into a new lease.

        Returns ``None`` when no work is queued.  Granted cells leave the
        tenant queues (local workers cannot pick them up) but stay in
        ``_inflight`` so later submissions still dedup onto them; each
        grant charges one ``worker_attempts`` against the cell's
        ``worker_retries`` budget.
        """
        entries: list[_InFlight] = []
        while len(entries) < max(1, max_cells):
            entry = self._next_entry()
            if entry is None:
                break
            entries.append(entry)
        if not entries:
            return None
        self._lease_counter += 1
        lease = Lease(
            lease_id=f"l{self._lease_counter:06d}-{secrets.token_hex(3)}",
            token=secrets.token_hex(8),
            worker_id=worker_id,
            ttl_s=self.lease_ttl_s,
            deadline=time.monotonic() + self.lease_ttl_s,
        )
        for entry in entries:
            entry.worker_attempts += 1
            lease.entries[entry.spec_hash] = entry
            for job, index in entry.subscribers:
                cell = job.cells[index]
                cell.state = "running"
                cell.worker = worker_id
                job.emit(job._cell_event(cell))
        self._leases[lease.lease_id] = lease
        self.totals["leases_granted"] += 1
        # Journaling the token lets a restarted head restore the lease
        # and accept this worker's pushes as if nothing happened.
        self._journal_append({
            "rec": "lease",
            "lease_id": lease.lease_id,
            "token": lease.token,
            "worker_id": worker_id,
            "ttl_s": lease.ttl_s,
            "cells": {
                spec_hash: entry.worker_attempts
                for spec_hash, entry in lease.entries.items()
            },
        })
        return lease

    def _check_lease(self, lease_id: str, token: str) -> Lease:
        lease = self._leases.get(lease_id)
        if lease is None or lease.token != token:
            raise UnknownLeaseError(lease_id)
        return lease

    def heartbeat(self, lease_id: str, token: str) -> Lease:
        """Extend a live lease's deadline by a full TTL."""
        lease = self._check_lease(lease_id, token)
        lease.deadline = time.monotonic() + lease.ttl_s
        return lease

    def push_results(
        self,
        lease_id: str,
        token: str,
        outcomes: Sequence[dict],
        worker_id: str = "",
    ) -> dict:
        """Accept per-cell outcomes from a remote worker.

        Outcomes are keyed by ``spec_hash`` and accepted whenever the
        cell is still unresolved — even if the lease already expired and
        was reaped (the work is done; discarding it would only waste the
        retry budget).  Outcomes for cells that resolved elsewhere in
        the meantime are counted stale.  ``lease_open=False`` in the
        reply tells the worker to abandon the rest of its batch.
        """
        lease = self._leases.get(lease_id)
        if lease is not None and lease.token != token:
            raise UnknownLeaseError(lease_id)
        accepted = 0
        stale = 0
        for outcome in outcomes:
            if self._accept_outcome(outcome, worker_id):
                accepted += 1
            else:
                stale += 1
                self.totals["results_stale"] += 1
        if lease is not None:
            lease.deadline = time.monotonic() + lease.ttl_s
            if not lease.entries:
                del self._leases[lease.lease_id]
                self._journal_lease_closed(lease.lease_id)
                lease = None
        return {
            "accepted": accepted,
            "stale": stale,
            "lease_open": lease is not None,
        }

    def _accept_outcome(self, outcome: dict, worker_id: str) -> bool:
        """Resolve one remotely executed cell; False if it went stale."""
        spec_hash = outcome["spec_hash"]
        entry = self._inflight.pop(spec_hash, None)
        if entry is None:
            return False
        self._remove_queued(entry)
        for lease in self._leases.values():
            lease.entries.pop(spec_hash, None)
        stats: Optional[RunStats] = None
        error: Optional[dict] = None
        if outcome.get("error") is not None:
            error = dict(outcome["error"])
        else:
            stats = outcome["stats"]
            if not isinstance(stats, RunStats):
                stats = RunStats.from_dict(stats)
            if self.cache is not None:
                # Artifact replication: the head's cache now serves this
                # cell to every future submission and cache-warming worker.
                self.cache.put(entry.spec, stats)
        self.totals["cells_remote"] += 1
        if outcome.get("simulated", True) and error is None:
            for job, index in entry.subscribers:
                job.cells[index].worker = worker_id or None
        self._resolve(entry, stats, error, remote=True)
        return True

    def _remove_queued(self, entry: _InFlight) -> None:
        """Drop an entry from its tenant queue, if it is still queued."""
        queue = self._queues.get(entry.tenant)
        if queue is None:
            return
        try:
            queue.remove(entry)
        except ValueError:
            return
        if not queue:
            del self._queues[entry.tenant]
            self._tenant_order.remove(entry.tenant)

    def release_cells(
        self,
        lease_id: str,
        token: str,
        spec_hashes: Optional[Sequence[str]] = None,
    ) -> dict:
        """Give unstarted cells of a live lease back to the head.

        The graceful-drain counterpart of :meth:`reap_expired`: a worker
        shutting down cleanly releases the cells it never started, which
        requeues them immediately (no TTL wait) and *refunds* the
        ``worker_attempts`` the grant charged — a drained worker must
        not burn a cell's retry budget.  ``spec_hashes=None`` releases
        every remaining cell of the lease.  Raises
        :class:`UnknownLeaseError` for a dead lease or a bad token.
        """
        lease = self._check_lease(lease_id, token)
        hashes = (
            list(lease.entries)
            if spec_hashes is None
            else list(spec_hashes)
        )
        released: list[str] = []
        for spec_hash in hashes:
            entry = lease.entries.pop(spec_hash, None)
            if entry is None or spec_hash not in self._inflight:
                continue
            entry.worker_attempts = max(0, entry.worker_attempts - 1)
            for job, index in entry.subscribers:
                cell = job.cells[index]
                cell.state = "queued"
                cell.worker = None
                job.emit(job._cell_event(cell))
            self._enqueue(entry.tenant, entry)
            released.append(spec_hash)
            self.totals["cells_released"] += 1
        if released:
            self._journal_append({
                "rec": "release",
                "lease_id": lease_id,
                "spec_hashes": released,
            })
        lease_open = bool(lease.entries)
        if not lease_open:
            del self._leases[lease_id]
            self._journal_lease_closed(lease_id)
        return {"released": len(released), "lease_open": lease_open}

    def reap_expired(self, now: Optional[float] = None) -> int:
        """Requeue (or fail) the cells of every lease past its deadline.

        Each expired lease's cells are requeued exactly once — back onto
        their tenants' queues with state reset to ``queued`` — unless
        their ``worker_retries`` budget is spent, in which case they
        resolve as structured ``worker_lost`` failures.  Returns the
        number of cells requeued.
        """
        now = time.monotonic() if now is None else now
        requeued = 0
        for lease_id in [
            lid for lid, lease in self._leases.items()
            if lease.deadline <= now
        ]:
            lease = self._leases.pop(lease_id)
            self.totals["leases_reaped"] += 1
            self._journal_lease_closed(lease_id)
            for entry in lease.entries.values():
                if entry.spec_hash not in self._inflight:
                    continue  # resolved by a late push; nothing to redo
                if entry.worker_attempts <= self.worker_retries:
                    for job, index in entry.subscribers:
                        cell = job.cells[index]
                        cell.state = "queued"
                        cell.worker = None
                        job.emit(job._cell_event(cell))
                    self._enqueue(entry.tenant, entry)
                    self.totals["cells_requeued"] += 1
                    requeued += 1
                else:
                    self._inflight.pop(entry.spec_hash, None)
                    self._resolve(entry, None, {
                        "kind": "worker_lost",
                        "message": (
                            f"worker {lease.worker_id!r} lost lease "
                            f"{lease_id} after {entry.worker_attempts} "
                            f"attempt(s)"
                        ),
                        "attempts": entry.worker_attempts,
                    })
        return requeued

    async def _reaper(self) -> None:
        """Background sweep converting expired leases into requeues."""
        interval = max(0.05, min(1.0, self.lease_ttl_s / 4))
        while self._running:
            await asyncio.sleep(interval)
            try:
                self.reap_expired()
            except Exception:
                pass  # never let a reap error kill the loop

    # -- execution -------------------------------------------------------------

    def _run_cell_blocking(self, spec: SimSpec) -> RunStats:
        """Executor-thread body: simulate one cell and persist it."""
        if self._runner is not None:
            stats = self._runner(spec)
        elif self.executor_kind == "inline":
            stats = run_spec(spec)
        else:
            stats = execute_cell(
                spec, timeout_s=self.timeout_s, retries=self.retries
            )
        if self.cache is not None:
            self.cache.put(spec, stats)
        return stats

    async def _execute(self, entry: _InFlight) -> None:
        for job, index in entry.subscribers:
            cell = job.cells[index]
            cell.state = "running"
            job.emit(job._cell_event(cell))
        loop = asyncio.get_running_loop()
        stats: Optional[RunStats] = None
        error: Optional[dict] = None
        try:
            stats = await loop.run_in_executor(
                self._pool, self._run_cell_blocking, entry.spec
            )
        except CellExecutionError as exc:
            error = {
                "kind": exc.kind,
                "message": exc.message,
                "attempts": exc.attempts,
            }
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # inline runner failures
            error = {
                "kind": _failure_kind(exc),
                "message": f"{type(exc).__name__}: {exc}",
                "attempts": 1,
            }
        finally:
            self._inflight.pop(entry.spec_hash, None)
        self._resolve(entry, stats, error)

    def _resolve(
        self,
        entry: _InFlight,
        stats: Optional[RunStats],
        error: Optional[dict],
        remote: bool = False,
    ) -> None:
        for position, (job, index) in enumerate(entry.subscribers):
            cell = job.cells[index]
            if error is None:
                cell.state = "done"
                cell.origin = (
                    ORIGIN_SIMULATED if position == 0 else ORIGIN_DEDUPED
                )
                cell.stats = stats
                key = (
                    "cells_simulated" if position == 0 else "cells_deduped"
                )
                self.totals[key] += 1
                self.totals["cells_delivered"] += 1
            else:
                cell.state = "failed"
                cell.error = dict(error)
                kind = error["kind"]
                job.failure_kinds[kind] = job.failure_kinds.get(kind, 0) + 1
                kinds = self.totals["failure_kinds"]
                kinds[kind] = kinds.get(kind, 0) + 1
                self.totals["cells_failed"] += 1
            job.emit(job._cell_event(cell))
            if not job.is_done:
                job._maybe_finish()
                if job.is_done:
                    self.totals["jobs_done"] += 1
        if self._journal is not None and not self._recovering:
            record: dict = {
                "rec": "resolve",
                "spec_hash": entry.spec_hash,
                "ok": error is None,
                "cells": [],
            }
            for job, index in entry.subscribers:
                cell = job.cells[index]
                ref = {
                    "job": job.job_id,
                    "index": index,
                    "origin": cell.origin,
                }
                if cell.worker:
                    ref["worker"] = cell.worker
                record["cells"].append(ref)
            if error is not None:
                record["error"] = dict(error)
            if remote:
                record["remote"] = True
            self._journal.append(record)

    # -- introspection ---------------------------------------------------------

    def stats_dict(self) -> dict:
        return {
            **{k: (dict(v) if isinstance(v, dict) else v)
               for k, v in self.totals.items()},
            "pending_cells": self.pending_cells,
            "max_pending": self.max_pending,
            "workers": self.workers,
            "executor": self.executor_kind,
            "tenants_queued": len(self._queues),
            "jobs_open": sum(
                1 for job in self._jobs.values() if not job.is_done
            ),
            "leases_open": len(self._leases),
            "lease_ttl_s": self.lease_ttl_s,
            "worker_retries": self.worker_retries,
            "cache_enabled": self.cache is not None,
            "journal_enabled": self._journal_enabled,
            "journal_path": self.journal_path,
        }

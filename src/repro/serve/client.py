"""Clients for the sweep service.

* :class:`ServeClient` — synchronous, ``http.client``-based; what the
  CLI's ``repro sweep --server URL`` and the remote worker
  (:mod:`repro.serve.worker`) use.  :meth:`ServeClient.sweep` submits a
  grid (retrying with backoff while the server sheds load), waits on the
  NDJSON event stream, and folds the delivered results back into an
  ordinary :class:`~repro.experiments.orchestrator.SweepSummary`, so
  server-side and local sweeps are interchangeable to callers.
* :class:`AsyncServeClient` — raw-asyncio, one connection per request;
  used by the load harness to hold a thousand submissions in flight on
  one event loop.

Both speak the versioned typed messages of :mod:`repro.serve.protocol`
(:class:`SubmitRequest` out, :class:`JobSnapshot`/:class:`JobResults`
back, the lease triple for workers) and raise one :class:`ServeError`
hierarchy: every failure — transport, backpressure, protocol skew,
unknown resources, server faults — is a subclass carrying the parsed
:class:`~repro.serve.protocol.ErrorBody` and a BSD-``sysexits``-style
``exit_code`` the CLI returns verbatim.  Neither client imports
anything beyond the stdlib.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import time
from typing import Iterator, Optional, Sequence
from urllib.parse import urlsplit

from repro.experiments.orchestrator import CellFailure, SweepSummary
from repro.experiments.spec import SimSpec
from repro.serve.backoff import TRANSIENT_ERRORS, Backoff, jittered
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ErrorBody,
    HeartbeatAck,
    HeartbeatRequest,
    JobResults,
    JobSnapshot,
    LeaseGrant,
    LeaseRelease,
    LeaseRequest,
    ReleaseAck,
    ResultAck,
    ResultPush,
    SubmitRequest,
)


class ServeError(RuntimeError):
    """Base of every client-visible service failure.

    ``error`` is the parsed structured body (synthesized for transport
    failures), ``status`` the HTTP status (None when the request never
    got a response), and ``exit_code`` what ``repro sweep --server``
    exits with — BSD ``sysexits`` values, so scripts can tell a full
    queue (75, retryable) from protocol skew (76, upgrade something).
    """

    exit_code = 70  # EX_SOFTWARE: unclassified server-side failure

    def __init__(
        self,
        message: str,
        *,
        status: Optional[int] = None,
        error: Optional[ErrorBody] = None,
    ):
        super().__init__(message)
        self.status = status
        self.error = error or ErrorBody(kind="error", message=message)

    @property
    def kind(self) -> str:
        return self.error.kind


class ServeConnectionError(ServeError):
    """The head is unreachable (refused, reset, or timed out)."""

    exit_code = 69  # EX_UNAVAILABLE


class ServerBusy(ServeError):
    """429: the store's pending-cell queue is full; retry later."""

    exit_code = 75  # EX_TEMPFAIL

    def __init__(self, message, *, status=None, error=None,
                 retry_after_s: float = 1.0):
        super().__init__(message, status=status, error=error)
        self.retry_after_s = retry_after_s


class ProtocolMismatch(ServeError):
    """The head speaks a different protocol revision than this client."""

    exit_code = 76  # EX_PROTOCOL


class BadRequestError(ServeError):
    """400: the server rejected the request body as malformed."""

    exit_code = 65  # EX_DATAERR


class UnknownResourceError(ServeError):
    """404: no such job, lease, artifact, or route."""

    exit_code = 66  # EX_NOINPUT


class ServerInternalError(ServeError):
    """5xx: the handler itself failed."""

    exit_code = 70  # EX_SOFTWARE


def raise_for_status(status: int, headers, body: dict) -> None:
    """Map a non-2xx response onto the :class:`ServeError` hierarchy."""
    if 200 <= status < 300:
        return
    error = ErrorBody.from_dict(body if isinstance(body, dict) else {})
    message = f"HTTP {status}: {error.kind}: {error.message}"
    if error.kind == "queue_full" or status == 429:
        retry_after = error.retry_after_s
        if retry_after is None:
            try:
                retry_after = float((headers or {}).get("Retry-After", 1.0))
            except (TypeError, ValueError):
                retry_after = 1.0
        raise ServerBusy(
            message, status=status, error=error,
            retry_after_s=float(retry_after),
        )
    if error.kind == "protocol_mismatch":
        raise ProtocolMismatch(message, status=status, error=error)
    if status == 404:
        raise UnknownResourceError(message, status=status, error=error)
    if status in (400, 405, 413):
        raise BadRequestError(message, status=status, error=error)
    if status >= 500:
        raise ServerInternalError(message, status=status, error=error)
    raise ServeError(message, status=status, error=error)


def summary_from_results(results: JobResults) -> SweepSummary:
    """Fold a job's typed results into an ordinary sweep summary.

    ``simulated`` counts cells this server actually ran for the job;
    dedup ride-alongs and submit-time cache hits both count as
    ``cached`` (no simulation happened on this job's behalf), mirroring
    what a warm local sweep would report.
    """
    summary = SweepSummary()
    for item in results.results:
        summary.results[item.spec] = item.stats
        if item.origin == "simulated":
            summary.simulated += 1
        else:
            summary.cached += 1
    for item in results.failures:
        error = item.error
        summary.failures.append(CellFailure(
            spec=item.spec,
            kind=error.get("kind", "error"),
            message=error.get("message", ""),
            attempts=error.get("attempts", 1),
        ))
    summary.elapsed_s = results.snapshot.elapsed_s
    return summary


class ServeClient:
    """Synchronous client; one HTTP connection per call.

    Idempotent requests (GETs, including the mid-stream event follow)
    transparently retry on transient transport resets
    (:data:`~repro.serve.backoff.TRANSIENT_ERRORS`), and — when
    ``outage_grace_s`` is positive — keep retrying *any* connection
    failure with full-jitter backoff until the grace window expires, so
    a head restart mid-sweep looks like a pause rather than a crash.
    Non-idempotent POSTs are never silently replayed.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8731,
        tenant: str = "default",
        timeout_s: float = 300.0,
        outage_grace_s: float = 0.0,
        transient_retries: int = 3,
        rng: Optional[random.Random] = None,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout_s = timeout_s
        self.outage_grace_s = outage_grace_s
        self.transient_retries = transient_retries
        self._rng = rng

    @classmethod
    def from_url(cls, url: str, **kwargs) -> "ServeClient":
        """Client for ``http://host:port`` (the CLI's --server value)."""
        parts = urlsplit(url if "//" in url else f"//{url}", scheme="http")
        if parts.scheme != "http":
            raise ValueError(f"only http:// servers are supported: {url!r}")
        return cls(
            host=parts.hostname or "127.0.0.1",
            port=parts.port or 8731,
            **kwargs,
        )

    # -- transport -------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        idempotent: Optional[bool] = None,
    ) -> tuple[int, dict, dict]:
        """One request, retried when it is safe to replay it.

        GETs default to idempotent; POSTs must opt in explicitly.  Two
        retry budgets apply: a small bounded count for transient resets
        (connection reset / broken pipe mid-exchange), and an
        ``outage_grace_s`` wall-clock window during which *any*
        connection failure — including refused connections while the
        head restarts — is retried with full-jitter backoff.
        """
        if idempotent is None:
            idempotent = method == "GET"
        backoff = Backoff(base_s=0.05, cap_s=2.0, rng=self._rng)
        transient_left = self.transient_retries
        grace_deadline: Optional[float] = None
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServeConnectionError as exc:
                if not idempotent:
                    raise
                now = time.monotonic()
                if grace_deadline is None:
                    grace_deadline = now + self.outage_grace_s
                transient = isinstance(exc.__cause__, TRANSIENT_ERRORS)
                if transient and transient_left > 0:
                    transient_left -= 1
                elif now >= grace_deadline:
                    raise
                time.sleep(backoff.next_delay())

    def _request_once(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> tuple[int, dict, dict]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            body = None
            headers = {"X-Repro-Tenant": self.tenant}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (ConnectionError, TimeoutError, OSError) as exc:
                raise ServeConnectionError(
                    f"head {self.host}:{self.port} unreachable: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            parsed = json.loads(raw) if raw else {}
            return response.status, dict(response.getheaders()), parsed
        finally:
            conn.close()

    def _json(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        status, headers, body = self._request(method, path, payload)
        raise_for_status(status, headers, body)
        return body

    # -- surface ---------------------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def check_protocol(self) -> dict:
        """Health check that also enforces protocol-version agreement."""
        health = self.health()
        got = health.get("protocol_version")
        if got != PROTOCOL_VERSION:
            raise ProtocolMismatch(
                f"head {self.host}:{self.port} speaks protocol {got!r}, "
                f"this client speaks {PROTOCOL_VERSION}",
                error=ErrorBody(
                    kind="protocol_mismatch",
                    message="head/client protocol skew",
                    expected_version=PROTOCOL_VERSION,
                    got_version=got if isinstance(got, int) else None,
                ),
            )
        return health

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def submit(self, specs: Sequence[SimSpec]) -> JobSnapshot:
        """Submit a grid; returns the snapshot (raises ServerBusy on 429)."""
        request = SubmitRequest(specs=tuple(specs), tenant=self.tenant)
        return JobSnapshot.from_dict(
            self._json("POST", "/jobs", request.to_dict())
        )

    def job(self, job_id: str, detail: bool = True) -> JobSnapshot:
        suffix = "" if detail else "?detail=0"
        return JobSnapshot.from_dict(
            self._json("GET", f"/jobs/{job_id}{suffix}")
        )

    def results(self, job_id: str) -> JobResults:
        return JobResults.from_dict(
            self._json("GET", f"/jobs/{job_id}/results")
        )

    def artifact(self, spec_hash: str) -> dict:
        return self._json("GET", f"/cells/{spec_hash}")

    # -- worker surface --------------------------------------------------------

    def lease(self, worker_id: str, max_cells: int = 4) -> LeaseGrant:
        """Ask the head for a batch of cells (empty grant when idle)."""
        request = LeaseRequest(worker_id=worker_id, max_cells=max_cells)
        return LeaseGrant.from_dict(
            self._json("POST", "/leases", request.to_dict())
        )

    def heartbeat(self, lease_id: str, token: str) -> HeartbeatAck:
        request = HeartbeatRequest(token=token)
        return HeartbeatAck.from_dict(
            self._json(
                "POST", f"/leases/{lease_id}/heartbeat", request.to_dict()
            )
        )

    def push_results(self, lease_id: str, push: ResultPush) -> ResultAck:
        return ResultAck.from_dict(
            self._json("POST", f"/leases/{lease_id}/results", push.to_dict())
        )

    def release(
        self,
        lease_id: str,
        token: str,
        spec_hashes: Sequence[str] = (),
    ) -> ReleaseAck:
        """Give unstarted leased cells back to the head's queue.

        An empty ``spec_hashes`` releases every cell still on the
        lease.  Used by a draining worker so its unfinished work is
        re-queued immediately instead of waiting out the lease TTL.
        """
        request = LeaseRelease(token=token, spec_hashes=tuple(spec_hashes))
        return ReleaseAck.from_dict(
            self._json("POST", f"/leases/{lease_id}/release",
                       request.to_dict())
        )

    # -- event streaming -------------------------------------------------------

    def iter_events(self, job_id: str) -> Iterator[dict]:
        """The job's NDJSON event stream, replayed then followed to the end.

        Survives a dropped stream: on a transient mid-stream reset (or
        any connection failure within ``outage_grace_s``) the client
        reconnects and — because the server replays the job's event log
        from the start — skips the events it already yielded, so callers
        see each event once.  A clean end-of-stream after a ``done``
        event terminates the iterator.
        """
        yielded = 0
        finished = False
        transient_left = self.transient_retries
        grace_deadline: Optional[float] = None
        backoff = Backoff(base_s=0.05, cap_s=2.0, rng=self._rng)
        while True:
            exc: Optional[ServeConnectionError] = None
            try:
                for event in self._iter_events_once(job_id, skip=yielded):
                    yielded += 1
                    transient_left = self.transient_retries
                    grace_deadline = None
                    backoff.reset()
                    if event.get("event") == "done":
                        finished = True
                    yield event
            except ServeConnectionError as err:
                exc = err
            if finished:
                return
            now = time.monotonic()
            if grace_deadline is None:
                grace_deadline = now + self.outage_grace_s
            transient = exc is not None and isinstance(
                exc.__cause__, TRANSIENT_ERRORS
            )
            if transient and transient_left > 0:
                transient_left -= 1
            elif now < grace_deadline:
                pass
            elif exc is not None:
                raise exc
            else:
                return  # clean EOF with no grace window: stream is over
            time.sleep(backoff.next_delay())

    def _iter_events_once(self, job_id: str, skip: int = 0) -> Iterator[dict]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            try:
                conn.request(
                    "GET",
                    f"/jobs/{job_id}/events",
                    headers={"X-Repro-Tenant": self.tenant},
                )
                response = conn.getresponse()
            except (ConnectionError, TimeoutError, OSError) as exc:
                raise ServeConnectionError(
                    f"head {self.host}:{self.port} unreachable: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            if response.status != 200:
                raw = response.read()
                raise_for_status(
                    response.status,
                    dict(response.getheaders()),
                    json.loads(raw) if raw else {},
                )
            seen = 0
            while True:
                try:
                    line = response.readline()
                except (ConnectionError, TimeoutError, OSError) as exc:
                    raise ServeConnectionError(
                        f"head {self.host}:{self.port} event stream "
                        f"interrupted: {type(exc).__name__}: {exc}"
                    ) from exc
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                seen += 1
                if seen > skip:
                    yield event
        finally:
            conn.close()

    def wait(self, job_id: str) -> JobResults:
        """Follow the event stream until the job ends; returns results."""
        for event in self.iter_events(job_id):
            if event.get("event") == "done":
                break
        return self.results(job_id)

    def sweep(
        self,
        specs: Sequence[SimSpec],
        max_retries: int = 20,
        progress=None,
    ) -> SweepSummary:
        """Submit + wait + fold into a SweepSummary (the CLI client path).

        Respects backpressure: a 429 sleeps for the server's suggested
        Retry-After and resubmits, up to ``max_retries`` times.
        """
        attempt = 0
        while True:
            try:
                snapshot = self.submit(specs)
                break
            except ServerBusy as busy:
                attempt += 1
                if attempt > max_retries:
                    raise
                delay = jittered(busy.retry_after_s, rng=self._rng)
                if progress is not None:
                    progress(
                        f"server busy; retrying in {delay:.1f}s "
                        f"({attempt}/{max_retries})"
                    )
                time.sleep(delay)
        job_id = snapshot.job_id
        if progress is not None:
            for event in self.iter_events(job_id):
                if event.get("event") == "cell" and event.get("state") in (
                    "done", "failed"
                ):
                    progress(
                        f"{event.get('label', event.get('spec_hash'))}: "
                        f"{event['state']} ({event.get('origin', '-')})"
                    )
                elif event.get("event") == "done":
                    break
            results = self.results(job_id)
        else:
            results = self.wait(job_id)
        return summary_from_results(results)


class AsyncServeClient:
    """Asyncio client: one short-lived connection per request.

    GETs retry transient transport resets (bounded), mirroring the
    synchronous client; POSTs are never replayed.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8731,
        tenant: str = "default",
        transient_retries: int = 3,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.transient_retries = transient_retries

    async def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> tuple[int, dict]:
        retries_left = self.transient_retries if method == "GET" else 0
        backoff = Backoff(base_s=0.05, cap_s=2.0)
        while True:
            try:
                return await self._request_once(method, path, payload)
            except ServeConnectionError as exc:
                if retries_left <= 0 or not isinstance(
                    exc.__cause__, TRANSIENT_ERRORS
                ):
                    raise
                retries_left -= 1
                await asyncio.sleep(backoff.next_delay())

    async def _request_once(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> tuple[int, dict]:
        try:
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
        except (ConnectionError, OSError) as exc:
            raise ServeConnectionError(
                f"head {self.host}:{self.port} unreachable: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        try:
            body = b""
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"X-Repro-Tenant: {self.tenant}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + body)
            await writer.drain()

            status_line = await reader.readline()
            status = int(status_line.split()[1])
            retry_after = None
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "retry-after":
                    retry_after = value.strip()
            raw = await reader.read()
            parsed = json.loads(raw) if raw.strip() else {}
            headers = (
                {"Retry-After": retry_after} if retry_after is not None else {}
            )
            raise_for_status(status, headers, parsed)
            return status, parsed
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def submit(self, specs: Sequence[SimSpec]) -> JobSnapshot:
        request = SubmitRequest(specs=tuple(specs), tenant=self.tenant)
        __, body = await self._request("POST", "/jobs", request.to_dict())
        return JobSnapshot.from_dict(body)

    async def job(self, job_id: str, detail: bool = False) -> JobSnapshot:
        suffix = "" if detail else "?detail=0"
        __, body = await self._request("GET", f"/jobs/{job_id}{suffix}")
        return JobSnapshot.from_dict(body)

    async def results(self, job_id: str) -> JobResults:
        __, body = await self._request("GET", f"/jobs/{job_id}/results")
        return JobResults.from_dict(body)

    async def stats(self) -> dict:
        __, body = await self._request("GET", "/stats")
        return body

    async def wait(
        self, job_id: str, poll_s: float = 0.05, timeout_s: float = 600.0
    ) -> JobSnapshot:
        """Poll the job until done; returns the final (detail-free) snapshot."""
        deadline = time.monotonic() + timeout_s
        while True:
            snapshot = await self.job(job_id, detail=False)
            if snapshot.state == "done":
                return snapshot
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot.state} "
                    f"after {timeout_s:.0f}s"
                )
            await asyncio.sleep(poll_s)

"""Clients for the sweep service.

* :class:`ServeClient` — synchronous, ``http.client``-based; what the
  CLI's ``repro sweep --server URL`` uses.  :meth:`ServeClient.sweep`
  submits a grid (retrying with backoff while the server sheds load),
  waits on the NDJSON event stream, and folds the delivered results back
  into an ordinary
  :class:`~repro.experiments.orchestrator.SweepSummary`, so server-side
  and local sweeps are interchangeable to callers.
* :class:`AsyncServeClient` — raw-asyncio, one connection per request;
  used by the load harness to hold a thousand submissions in flight on
  one event loop.

Both speak the plain JSON surface of :mod:`repro.serve.server`; neither
imports anything beyond the stdlib.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import time
from typing import Iterator, Optional, Sequence
from urllib.parse import urlsplit

from repro.core.system import RunStats
from repro.experiments.orchestrator import CellFailure, SweepSummary
from repro.experiments.spec import SimSpec


class ServeError(RuntimeError):
    """Non-2xx response from the server."""

    def __init__(self, status: int, body: dict):
        error = body.get("error", {}) if isinstance(body, dict) else {}
        super().__init__(
            f"HTTP {status}: {error.get('kind', 'error')}: "
            f"{error.get('message', body)}"
        )
        self.status = status
        self.body = body


class ServerBusy(ServeError):
    """429: the store's pending-cell queue is full; retry later."""

    def __init__(self, status: int, body: dict, retry_after_s: float):
        super().__init__(status, body)
        self.retry_after_s = retry_after_s


def _raise_for_status(status: int, headers, body: dict) -> None:
    if 200 <= status < 300:
        return
    if status == 429:
        retry_after = body.get("error", {}).get("retry_after_s")
        if retry_after is None:
            try:
                retry_after = float(headers.get("Retry-After", 1.0))
            except (TypeError, ValueError):
                retry_after = 1.0
        raise ServerBusy(status, body, float(retry_after))
    raise ServeError(status, body)


def summary_from_results(results_body: dict) -> SweepSummary:
    """Fold a job's results body into an ordinary sweep summary.

    ``simulated`` counts cells this server actually ran for the job;
    dedup ride-alongs and submit-time cache hits both count as
    ``cached`` (no simulation happened on this job's behalf), mirroring
    what a warm local sweep would report.
    """
    summary = SweepSummary()
    for item in results_body.get("results", ()):
        spec = SimSpec.from_dict(item["spec"])
        summary.results[spec] = RunStats.from_dict(item["stats"])
        if item.get("origin") == "simulated":
            summary.simulated += 1
        else:
            summary.cached += 1
    for item in results_body.get("failures", ()):
        error = item.get("error", {})
        summary.failures.append(CellFailure(
            spec=SimSpec.from_dict(item["spec"]),
            kind=error.get("kind", "error"),
            message=error.get("message", ""),
            attempts=error.get("attempts", 1),
        ))
    summary.elapsed_s = results_body.get("elapsed_s", 0.0)
    return summary


class ServeClient:
    """Synchronous client; one HTTP connection per call."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8731,
        tenant: str = "default",
        timeout_s: float = 300.0,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout_s = timeout_s

    @classmethod
    def from_url(cls, url: str, **kwargs) -> "ServeClient":
        """Client for ``http://host:port`` (the CLI's --server value)."""
        parts = urlsplit(url if "//" in url else f"//{url}", scheme="http")
        if parts.scheme != "http":
            raise ValueError(f"only http:// servers are supported: {url!r}")
        return cls(
            host=parts.hostname or "127.0.0.1",
            port=parts.port or 8731,
            **kwargs,
        )

    # -- transport -------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> tuple[int, dict, dict]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            body = None
            headers = {"X-Repro-Tenant": self.tenant}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            parsed = json.loads(raw) if raw else {}
            return response.status, dict(response.getheaders()), parsed
        finally:
            conn.close()

    def _json(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        status, headers, body = self._request(method, path, payload)
        _raise_for_status(status, headers, body)
        return body

    # -- surface ---------------------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def submit(self, specs: Sequence[SimSpec]) -> dict:
        """Submit a grid; returns the job snapshot (raises ServerBusy on 429)."""
        return self._json("POST", "/jobs", {
            "tenant": self.tenant,
            "specs": [spec.to_dict() for spec in specs],
        })

    def job(self, job_id: str, detail: bool = True) -> dict:
        suffix = "" if detail else "?detail=0"
        return self._json("GET", f"/jobs/{job_id}{suffix}")

    def results(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}/results")

    def artifact(self, spec_hash: str) -> dict:
        return self._json("GET", f"/cells/{spec_hash}")

    def iter_events(self, job_id: str) -> Iterator[dict]:
        """The job's NDJSON event stream, replayed then followed to the end."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request(
                "GET",
                f"/jobs/{job_id}/events",
                headers={"X-Repro-Tenant": self.tenant},
            )
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                _raise_for_status(
                    response.status,
                    dict(response.getheaders()),
                    json.loads(raw) if raw else {},
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def wait(self, job_id: str) -> dict:
        """Follow the event stream until the job ends; returns results."""
        for event in self.iter_events(job_id):
            if event.get("event") == "done":
                break
        return self.results(job_id)

    def sweep(
        self,
        specs: Sequence[SimSpec],
        max_retries: int = 20,
        progress=None,
    ) -> SweepSummary:
        """Submit + wait + fold into a SweepSummary (the CLI client path).

        Respects backpressure: a 429 sleeps for the server's suggested
        Retry-After and resubmits, up to ``max_retries`` times.
        """
        attempt = 0
        while True:
            try:
                snapshot = self.submit(specs)
                break
            except ServerBusy as busy:
                attempt += 1
                if attempt > max_retries:
                    raise
                if progress is not None:
                    progress(
                        f"server busy; retrying in {busy.retry_after_s:.1f}s "
                        f"({attempt}/{max_retries})"
                    )
                time.sleep(busy.retry_after_s)
        job_id = snapshot["job_id"]
        if progress is not None:
            for event in self.iter_events(job_id):
                if event.get("event") == "cell" and event.get("state") in (
                    "done", "failed"
                ):
                    progress(
                        f"{event.get('label', event.get('spec_hash'))}: "
                        f"{event['state']} ({event.get('origin', '-')})"
                    )
                elif event.get("event") == "done":
                    break
            results_body = self.results(job_id)
        else:
            results_body = self.wait(job_id)
        return summary_from_results(results_body)


class AsyncServeClient:
    """Asyncio client: one short-lived connection per request."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8731,
        tenant: str = "default",
    ):
        self.host = host
        self.port = port
        self.tenant = tenant

    async def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> tuple[int, dict]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            body = b""
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"X-Repro-Tenant: {self.tenant}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + body)
            await writer.drain()

            status_line = await reader.readline()
            status = int(status_line.split()[1])
            retry_after = None
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "retry-after":
                    retry_after = value.strip()
            raw = await reader.read()
            parsed = json.loads(raw) if raw.strip() else {}
            headers = (
                {"Retry-After": retry_after} if retry_after is not None else {}
            )
            _raise_for_status(status, headers, parsed)
            return status, parsed
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def submit(self, specs: Sequence[SimSpec]) -> dict:
        __, body = await self._request("POST", "/jobs", {
            "tenant": self.tenant,
            "specs": [spec.to_dict() for spec in specs],
        })
        return body

    async def job(self, job_id: str, detail: bool = False) -> dict:
        suffix = "" if detail else "?detail=0"
        __, body = await self._request("GET", f"/jobs/{job_id}{suffix}")
        return body

    async def results(self, job_id: str) -> dict:
        __, body = await self._request("GET", f"/jobs/{job_id}/results")
        return body

    async def stats(self) -> dict:
        __, body = await self._request("GET", "/stats")
        return body

    async def wait(
        self, job_id: str, poll_s: float = 0.05, timeout_s: float = 600.0
    ) -> dict:
        """Poll the job until done; returns the final (detail-free) snapshot."""
        deadline = time.monotonic() + timeout_s
        while True:
            snapshot = await self.job(job_id, detail=False)
            if snapshot["state"] == "done":
                return snapshot
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']} "
                    f"after {timeout_s:.0f}s"
                )
            await asyncio.sleep(poll_s)

"""Analytic area / power / timing models.

Everything the paper takes from synthesis (Table 1), via-pitch geometry
(Table 2), Cacti 3.2 (bank and tag latencies), and the 3D wire-length
literature (Figure 2's sqrt(n) scaling) lives here as small, documented,
testable models.
"""

from repro.models.components import (
    ComponentSpec,
    NOC_ROUTER_5PORT,
    DTDMA_RX_TX,
    DTDMA_ARBITER,
    table1_rows,
)
from repro.models.via import (
    pillar_wire_count,
    pillar_area_um2,
    table2_rows,
    VIA_PITCHES_UM,
)
from repro.models.cacti import CactiModel, CacheArraySpec
from repro.models.wiring import wire_length_scale_factor, average_wire_length_mm

__all__ = [
    "ComponentSpec",
    "NOC_ROUTER_5PORT",
    "DTDMA_RX_TX",
    "DTDMA_ARBITER",
    "table1_rows",
    "pillar_wire_count",
    "pillar_area_um2",
    "table2_rows",
    "VIA_PITCHES_UM",
    "CactiModel",
    "CacheArraySpec",
    "wire_length_scale_factor",
    "average_wire_length_mm",
]

"""Cacti-style analytic cache array timing / area / power model.

The paper extracts its array latencies (64 KB bank: 5 cycles; 24 KB
per-cluster tag array: 4 cycles) and bank power from Cacti 3.2.  This is a
compact analytic stand-in anchored to those two datapoints: access time
grows with the square root of capacity (wordline/bitline RC both scale
with array edge length), plus a fixed decoder/sense overhead.  It exists
so the larger-cache sweeps (Fig 16) and ad-hoc configurations can derive
consistent latencies rather than hard-coding them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheArraySpec:
    """Geometry of one SRAM array."""

    size_kb: int
    associativity: int = 16
    line_bytes: int = 64

    @property
    def size_bytes(self) -> int:
        return self.size_kb * 1024


class CactiModel:
    """Analytic timing/area/power anchored to the paper's Cacti numbers.

    ``access_cycles(64KB) == 5`` and ``tag_cycles(24KB) == 4`` by
    construction; other sizes follow sqrt-capacity scaling.
    """

    # t(size) = overhead + k * sqrt(size_kb); anchored at the two
    # datapoints the paper quotes: data(64KB)=5, tag(24KB)=4 cycles.
    _OVERHEAD = 2.0

    def __init__(self, frequency_ghz: float = 3.0):
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        self.frequency_ghz = frequency_ghz
        self._k_data = (5.0 - self._OVERHEAD) / math.sqrt(64.0)
        self._k_tag = (4.0 - self._OVERHEAD) / math.sqrt(24.0)

    def access_cycles(self, spec: CacheArraySpec) -> int:
        """Data-array access latency in cycles (>= 1)."""
        cycles = self._OVERHEAD + self._k_data * math.sqrt(spec.size_kb)
        return max(1, round(cycles))

    def tag_cycles(self, spec: CacheArraySpec) -> int:
        """Tag-array access latency in cycles (>= 1)."""
        cycles = self._OVERHEAD + self._k_tag * math.sqrt(spec.size_kb)
        return max(1, round(cycles))

    def area_mm2(self, spec: CacheArraySpec) -> float:
        """Array area: ~1 mm^2 per 64 KB at 90 nm, linear in capacity."""
        return 1.0 * spec.size_kb / 64.0

    def dynamic_read_energy_nj(self, spec: CacheArraySpec) -> float:
        """Per-read energy, sqrt-capacity scaling from 0.6 nJ at 64 KB."""
        return 0.6 * math.sqrt(spec.size_kb / 64.0)

    def leakage_w(self, spec: CacheArraySpec) -> float:
        """Leakage, linear in capacity from 12 mW at 64 KB (clock-gated)."""
        return 0.012 * spec.size_kb / 64.0

    def tag_array_kb(self, cluster_banks: int, spec: CacheArraySpec) -> float:
        """Per-cluster tag array capacity for a cluster of banks.

        For the default 16 x 64 KB cluster this reproduces the paper's
        24 KB tag array: 16 K lines x ~12 tag+state bits.
        """
        lines = cluster_banks * spec.size_bytes // spec.line_bytes
        tag_bits = 12
        return lines * tag_bits / 8.0 / 1024.0

"""3D wire-length scaling (the paper's Figure 2).

Joyner et al.'s stochastic net-length result: stacking a design across
``n`` layers shrinks average interconnect length by a factor of
``sqrt(n)``, because each layer's footprint shrinks by ``n`` and lateral
distance scales with the footprint's edge.
"""

from __future__ import annotations

import math


def wire_length_scale_factor(num_layers: int) -> float:
    """Average wire-length reduction factor for an ``n``-layer stack."""
    if num_layers < 1:
        raise ValueError("need at least one layer")
    return math.sqrt(num_layers)


def average_wire_length_mm(
    base_length_mm: float, num_layers: int
) -> float:
    """Average wire length after folding onto ``num_layers`` layers."""
    if base_length_mm < 0:
        raise ValueError("length must be non-negative")
    return base_length_mm / wire_length_scale_factor(num_layers)


def mesh_hop_wire_mm(bank_area_mm2: float = 2.25) -> float:
    """Inter-router wire for one bank tile (~1.5 mm at 70 nm, the paper's
    figure for a 64 KB bank)."""
    if bank_area_mm2 <= 0:
        raise ValueError("area must be positive")
    return math.sqrt(bank_area_mm2)

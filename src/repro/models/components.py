"""Synthesized component area and power (the paper's Table 1).

The paper implemented the dTDMA bus components in Verilog and synthesized
them with 90 nm TSMC libraries; we record those results and derive the
paper's headline comparison: the vertical-interconnect hardware is orders
of magnitude smaller and less power-hungry than the NoC router it attaches
to, which is what justifies the hybrid NoC/bus fabric.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ComponentSpec:
    """One synthesized hardware block at 90 nm."""

    name: str
    power_w: float
    area_mm2: float
    per: str    # what one instance serves

    @property
    def power_mw(self) -> float:
        return self.power_w * 1e3

    @property
    def area_um2(self) -> float:
        return self.area_mm2 * 1e6


NOC_ROUTER_5PORT = ComponentSpec(
    name="Generic NoC Router (5-port)",
    power_w=119.55e-3,
    area_mm2=0.3748,
    per="node",
)

DTDMA_RX_TX = ComponentSpec(
    name="dTDMA Bus Rx/Tx (2 per client)",
    power_w=97.39e-6,
    area_mm2=0.00036207,
    per="pillar client",
)

DTDMA_ARBITER = ComponentSpec(
    name="dTDMA Bus Arbiter (1 per bus)",
    power_w=204.98e-6,
    area_mm2=0.00065480,
    per="pillar",
)


def table1_rows() -> list[tuple[str, float, float]]:
    """(component, power W, area mm^2) rows in the paper's order."""
    return [
        (spec.name, spec.power_w, spec.area_mm2)
        for spec in (NOC_ROUTER_5PORT, DTDMA_RX_TX, DTDMA_ARBITER)
    ]


def pillar_overhead_vs_router(num_layers: int) -> tuple[float, float]:
    """(power ratio, area ratio) of one pillar's hardware to one router.

    A pillar adds one Rx/Tx pair per layer plus one arbiter; the paper's
    point is that both ratios are well below 1% — "orders of magnitude
    smaller than the overall budget".
    """
    pillar_power = num_layers * DTDMA_RX_TX.power_w + DTDMA_ARBITER.power_w
    pillar_area = num_layers * DTDMA_RX_TX.area_mm2 + DTDMA_ARBITER.area_mm2
    return (
        pillar_power / NOC_ROUTER_5PORT.power_w,
        pillar_area / NOC_ROUTER_5PORT.area_mm2,
    )

"""Inter-wafer via geometry: pillar wiring area versus via pitch (Table 2).

A pillar is the bus data wires plus the arbiter's control wires; in
Face-to-Back bonding the vias punch through the active layer, so their
footprint is lost device area.  Area scales with the square of the via
pitch, which is why the paper tracks pitches from the 10 um of early
processes down to IBM's 0.2 um SOI demonstration.
"""

from __future__ import annotations

from repro.dtdma.arbiter import control_wire_count

# Pitches the paper tabulates (Table 2), in micrometres.
VIA_PITCHES_UM: tuple[float, ...] = (10.0, 5.0, 1.0, 0.2)


def pillar_wire_count(bus_width_bits: int = 128, num_layers: int = 4) -> int:
    """Total vertical wires of one pillar: data plus arbiter control.

    The paper's example: a 128-bit bus in a 4-layer chip needs
    3*4 + log2(4) = 14 control wires per layer tap, 3 x 14 = 42 in the
    table's accounting, giving the quoted 170 wires.
    """
    control = 3 * control_wire_count(num_layers)
    return bus_width_bits + control


# Effective pad-to-via pitch ratio implied by Table 2: the paper stresses
# that via *pads* do not scale with the vias themselves; its quoted areas
# equal 625 * pitch^2 for a 170-wire pillar, i.e. each wire's pad cell is
# sqrt(625/170) ~ 1.92 via pitches on a side.
VIA_PAD_FACTOR = (625.0 / 170.0) ** 0.5


def pillar_area_um2(
    via_pitch_um: float,
    bus_width_bits: int = 128,
    num_layers: int = 4,
) -> float:
    """Device area consumed by one pillar's vias, in square micrometres.

    Each of the pillar's wires occupies a pad cell of
    ``(VIA_PAD_FACTOR * pitch)^2``; for the paper's 170-wire pillar
    (128-bit bus + 42 control wires in a 4-layer chip) this reproduces
    Table 2's 62500 / 15625 / 625 / 25 um^2 at 10 / 5 / 1 / 0.2 um.
    """
    if via_pitch_um <= 0:
        raise ValueError("via pitch must be positive")
    wires = pillar_wire_count(bus_width_bits, num_layers)
    cell = VIA_PAD_FACTOR * via_pitch_um
    return wires * cell * cell


def table2_rows(
    bus_width_bits: int = 128, num_layers: int = 4
) -> list[tuple[float, float]]:
    """(pitch um, pillar area um^2) for the paper's four pitches."""
    return [
        (pitch, pillar_area_um2(pitch, bus_width_bits, num_layers))
        for pitch in VIA_PITCHES_UM
    ]


def area_overhead_vs_router(via_pitch_um: float, router_area_mm2: float = 0.3748) -> float:
    """Pillar via area as a fraction of one 5-port router's area.

    The paper notes ~4% at a 5 um pitch and a negligible fraction at
    0.2 um, concluding extra pillars are feasible.
    """
    return pillar_area_um2(via_pitch_um) / (router_area_mm2 * 1e6)

"""The clustered NUCA L2: functional storage plus management policies.

`NucaL2` binds the cluster stores to the search, placement/replacement and
migration policies on a placed chip topology.  It is purely *functional*:
it answers where a line is, what moved, and what was evicted.  Timing is
layered on top by :mod:`repro.core.system`, which prices the network
traffic each outcome implies (in either analytic-model or cycle-accurate
mode).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer
from repro.noc.routing import Coord
from repro.core.chip import ChipTopology
from repro.cache.addressing import AddressMap, DecodedAddress
from repro.cache.line import LineEntry
from repro.cache.cluster_store import ClusterStore
from repro.cache.search import SearchPolicy
from repro.cache.migration import MigrationPolicy, MigrationConfig

if TYPE_CHECKING:
    from repro.faults.state import FaultState


class AccessType(enum.Enum):
    READ = "read"
    WRITE = "write"
    IFETCH = "ifetch"


@dataclass
class AccessOutcome:
    """Everything the timing layer needs to price one L2 access."""

    address: int
    cpu_id: int
    hit: bool
    cluster: int                       # where the line was found / placed
    bank_node: Coord                   # mesh node holding the data
    tag_node: Coord                    # tag array that matched (or home's)
    search_step: int                   # 1 or 2; misses always pay step 2
    decoded: DecodedAddress
    access_type: AccessType = AccessType.READ
    migration: Optional[tuple[int, int]] = None   # (from, to) if started
    swap: Optional[tuple[int, int]] = None        # reverse transfer of a swap
    evicted_line: Optional[int] = None            # line address written back
    evicted_dirty: bool = False


class NucaL2:
    """16-cluster non-uniform L2 cache with 3D-aware management."""

    def __init__(
        self,
        topology: ChipTopology,
        migration_config: Optional[MigrationConfig] = None,
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.topology = topology
        self.config = topology.config
        self.addr_map = AddressMap(self.config)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.search = SearchPolicy(topology, tracer=self.tracer)
        self.migration = MigrationPolicy(topology, migration_config)
        self.stats = stats or StatsRegistry("l2")
        # One trace track per bank cluster: search steps land on the
        # cluster that answered, migrations on the cluster the line leaves.
        self._tracks = [
            self.tracer.track(f"cluster.{cluster.index}")
            for cluster in topology.clusters
        ]
        self.clusters = [
            ClusterStore(
                cluster.index, self.config.sets_per_cluster,
                self.config.associativity,
            )
            for cluster in topology.clusters
        ]
        # Ground truth: line address -> cluster index currently holding it.
        self._location: dict[int, int] = {}
        # Bank-fault state (None when no faults are injected).
        self._faults: Optional["FaultState"] = None

        scope = self.stats.scope("l2")
        self._hits = scope.counter("hits")
        self._misses = scope.counter("misses")
        self._hits_step1 = scope.counter("hits_step1")
        self._hits_local = scope.counter("hits_local_cluster")
        self._hits_step2 = scope.counter("hits_step2")
        self._migrations = scope.counter("migrations")
        self._swaps = scope.counter("migration_swaps")
        self._evictions = scope.counter("evictions")

    # -- geometry helpers --------------------------------------------------------

    def bank_node(self, cluster_index: int, decoded: DecodedAddress) -> Coord:
        """Mesh node of the bank holding ``decoded`` within a cluster.

        When the addressed bank is dead, the access is remapped to the
        next alive bank of the same cluster (round-robin scan), so the
        cluster keeps serving its address range at degraded capacity.
        """
        nodes = self.topology.clusters[cluster_index].bank_nodes
        bank = decoded.bank
        faults = self._faults
        if faults is not None and faults.dead_banks:
            dead = faults.dead_banks
            if (cluster_index, bank) in dead:
                total = len(nodes)
                for step in range(1, total):
                    candidate = (bank + step) % total
                    if (cluster_index, candidate) not in dead:
                        faults.bank_remapped()
                        return nodes[candidate]
                raise RuntimeError(
                    f"all {total} banks of cluster {cluster_index} are dead"
                )
        return nodes[bank]

    def tag_node(self, cluster_index: int) -> Coord:
        return self.topology.clusters[cluster_index].tag_node

    # -- main access path ------------------------------------------------------------

    def access(
        self,
        cpu_id: int,
        address: int,
        access_type: AccessType = AccessType.READ,
        cycle: float = 0.0,
    ) -> AccessOutcome:
        """Perform one L2 access; returns the functional outcome.

        ``cycle`` drives lazy-migration settlement and new migration
        deadlines; callers advancing simulated time must pass it.
        """
        decoded = self.addr_map.decode(address)
        line_addr = decoded.line_address
        cluster_index = self._location.get(line_addr)

        if cluster_index is not None:
            outcome = self._hit(
                cpu_id, decoded, cluster_index, access_type, cycle
            )
        else:
            outcome = self._miss(cpu_id, decoded, access_type, cycle)
        return outcome

    def _hit(
        self,
        cpu_id: int,
        decoded: DecodedAddress,
        cluster_index: int,
        access_type: AccessType,
        cycle: float,
    ) -> AccessOutcome:
        store = self.clusters[cluster_index]
        found = store.lookup(decoded.index, decoded.tag)
        if found is None:
            raise RuntimeError(
                f"location map desync for line {decoded.line_address:#x}"
            )
        way, entry = found

        # Settle a completed lazy migration before anything else.
        if entry.in_transit and cycle >= entry.in_transit_until:
            cluster_index = self._complete_migration(
                entry, decoded, cluster_index
            )
            store = self.clusters[cluster_index]
            refound = store.lookup(decoded.index, decoded.tag)
            way, entry = refound

        # Migration credit is maintained against the *previous* accessor so
        # alternating accessors reset it (anti-ping-pong).
        if entry.last_accessor == cpu_id:
            entry.migration_credit += 1
        else:
            entry.migration_credit = 1
        entry.touch(cpu_id)
        store.touch(decoded.index, way)
        if access_type == AccessType.WRITE:
            entry.dirty = True

        plan = self.search.plan(cpu_id)
        step = plan.step_of(cluster_index)
        tracer = self.tracer
        if tracer.enabled:
            tracer.cache_search(
                cycle,
                self._tracks[cluster_index],
                cpu_id,
                decoded.line_address,
                step,
                True,
            )
        self._hits.increment()
        if step == 1:
            self._hits_step1.increment()
            if cluster_index == plan.local_cluster:
                self._hits_local.increment()
        else:
            self._hits_step2.increment()

        migration: Optional[tuple[int, int]] = None
        if not entry.in_transit and self.migration.should_migrate(
            entry.migration_credit
        ):
            target = self.migration.target_cluster(cluster_index, cpu_id)
            if target is not None and self._can_accept(target, decoded):
                transfer = self.migration.transfer_latency(
                    cluster_index, target
                )
                entry.begin_migration(target, cycle + transfer)
                migration = (cluster_index, target)
                self._migrations.increment()
                if tracer.enabled:
                    tracer.migration(
                        cycle,
                        self._tracks[cluster_index],
                        decoded.line_address,
                        cluster_index,
                        target,
                    )

        return AccessOutcome(
            address=decoded.address,
            cpu_id=cpu_id,
            hit=True,
            cluster=cluster_index,
            bank_node=self.bank_node(cluster_index, decoded),
            tag_node=self.tag_node(cluster_index),
            search_step=step,
            decoded=decoded,
            access_type=access_type,
            migration=migration,
        )

    def _miss(
        self,
        cpu_id: int,
        decoded: DecodedAddress,
        access_type: AccessType,
        cycle: float,
    ) -> AccessOutcome:
        """Placement policy: the home cluster's set, evicting by pseudo-LRU."""
        self._misses.increment()
        home = decoded.home_cluster
        tracer = self.tracer
        if tracer.enabled:
            tracer.cache_search(
                cycle,
                self._tracks[home],
                cpu_id,
                decoded.line_address,
                2,
                False,
            )
        store = self.clusters[home]
        entry = LineEntry(tag=decoded.tag, index=decoded.index)
        entry.touch(cpu_id)
        entry.migration_credit = 1
        if access_type == AccessType.WRITE:
            entry.dirty = True
        victim = store.insert(decoded.index, entry)
        evicted_line = None
        evicted_dirty = False
        if victim is not None:
            if victim.is_replica:
                # Dropping a replica loses no data; the primary remains.
                self._note_replica_evicted(victim, home)
            else:
                evicted_line = self.addr_map.compose(
                    victim.tag, victim.index
                ) >> self.addr_map.offset_bits
                evicted_dirty = victim.dirty
                self._location.pop(evicted_line, None)
                self._evictions.increment()
        self._location[decoded.line_address] = home
        return AccessOutcome(
            address=decoded.address,
            cpu_id=cpu_id,
            hit=False,
            cluster=home,
            bank_node=self.bank_node(home, decoded),
            tag_node=self.tag_node(home),
            search_step=2,
            decoded=decoded,
            access_type=access_type,
            evicted_line=evicted_line,
            evicted_dirty=evicted_dirty,
        )

    # -- migration mechanics ----------------------------------------------------------

    def _can_accept(self, cluster_index: int, decoded: DecodedAddress) -> bool:
        """A migration target must offer a free way or a swappable victim."""
        store = self.clusters[cluster_index]
        if store.free_ways(decoded.index) > 0:
            return True
        ways = store._sets.get(decoded.index)
        if ways is None:
            return True
        return any(e is not None and not e.in_transit for e in ways)

    def _complete_migration(
        self, entry: LineEntry, decoded: DecodedAddress, old_cluster: int
    ) -> int:
        """Land a pending migration: move the line, swapping if needed.

        Returns the cluster the line now lives in.  When the target set is
        full, the pseudo-LRU victim there is *swapped* back into the freed
        slot (gradual migration moves data without destroying it).
        """
        target = entry.finish_migration()
        old_store = self.clusters[old_cluster]
        new_store = self.clusters[target]
        old_store.remove(decoded.index, entry.tag)
        victim = new_store.insert(decoded.index, entry)
        self._location[decoded.line_address] = target
        if victim is not None:
            if victim.is_replica:
                # Replicas are droppable; no swap, no location update.
                self._note_replica_evicted(victim, target)
            elif victim.in_transit:
                # Pathological corner: every way in transit.  Drop the
                # victim (writeback) rather than deadlock the swap.
                victim_line = (
                    self.addr_map.compose(victim.tag, victim.index)
                    >> self.addr_map.offset_bits
                )
                self._location.pop(victim_line, None)
                self._evictions.increment()
            else:
                old_store.insert(decoded.index, victim)
                victim_line = (
                    self.addr_map.compose(victim.tag, victim.index)
                    >> self.addr_map.offset_bits
                )
                self._location[victim_line] = old_cluster
                self._swaps.increment()
        return target

    def _note_replica_evicted(self, entry: LineEntry, cluster_index: int) -> None:
        """Hook for the replication extension: a replica was displaced."""

    # -- bank faults --------------------------------------------------------

    def attach_fault_state(self, state: "FaultState") -> None:
        """Bind bank-fault state; dead banks start degrading on apply."""
        self._faults = state

    def apply_bank_faults(self) -> int:
        """Re-derive per-cluster capacity from the live dead-bank set.

        Each cluster's usable associativity shrinks proportionally to its
        alive banks (a dead bank's storage is gone, not just its port).
        Lines displaced by the shrink are dropped — they reload as misses
        on the next access — and counted as ``faults.bank_lines_lost``.
        Healing restores full associativity; resident lines are kept.
        Returns the number of lines lost.
        """
        faults = self._faults
        if faults is None:
            return 0
        dead_by_cluster: dict[int, int] = {}
        for cluster_index, __ in faults.dead_banks:
            dead_by_cluster[cluster_index] = (
                dead_by_cluster.get(cluster_index, 0) + 1
            )
        lost = 0
        for cluster_index, store in enumerate(self.clusters):
            total_banks = len(
                self.topology.clusters[cluster_index].bank_nodes
            )
            dead = dead_by_cluster.get(cluster_index, 0)
            if dead >= total_banks:
                raise ValueError(
                    f"all {total_banks} banks of cluster {cluster_index} "
                    f"are dead; the cluster's address range is unservable"
                )
            effective = max(
                1, (store.ways * (total_banks - dead)) // total_banks
            )
            if effective == store.effective_ways:
                continue
            grow = effective > store.effective_ways
            store.effective_ways = effective
            if grow:
                continue
            for index, ways in list(store._sets.items()):
                occupied = [
                    way for way, e in enumerate(ways) if e is not None
                ]
                excess = len(occupied) - effective
                if excess <= 0:
                    continue
                # Shed from the highest way index down; in-transit lines
                # are shed too (their migration target slot still exists,
                # but the data is gone — treat as lost).
                for way in reversed(occupied):
                    if excess <= 0:
                        break
                    entry = ways[way]
                    ways[way] = None
                    store.lines_resident -= 1
                    excess -= 1
                    if entry.is_replica:
                        self._note_replica_evicted(entry, cluster_index)
                        continue
                    line = (
                        self.addr_map.compose(entry.tag, entry.index)
                        >> self.addr_map.offset_bits
                    )
                    self._location.pop(line, None)
                    faults.bank_lines_lost()
                    lost += 1
        return lost

    def settle_all(self, cycle: float) -> int:
        """Force-complete every due migration (used at sample boundaries)."""
        settled = 0
        for cluster_index, store in enumerate(self.clusters):
            due = [
                (index, entry)
                for index, __, entry in store.entries()
                if entry.in_transit and cycle >= entry.in_transit_until
            ]
            for index, entry in due:
                decoded = self.addr_map.decode(
                    self.addr_map.compose(entry.tag, entry.index)
                )
                self._complete_migration(entry, decoded, cluster_index)
                settled += 1
        return settled

    # -- introspection ------------------------------------------------------------

    def location_of(self, address: int) -> Optional[int]:
        """Cluster currently holding ``address``, or ``None``."""
        return self._location.get(self.addr_map.line_of(address))

    @property
    def lines_resident(self) -> int:
        return len(self._location)

    @property
    def hit_rate(self) -> float:
        total = self._hits.value + self._misses.value
        return self._hits.value / total if total else 0.0

    @property
    def migrations(self) -> int:
        return self._migrations.value

"""Per-cluster L2 storage: sets, ways, and pseudo-LRU state.

Each cluster owns ``sets_per_cluster`` sets of ``associativity`` ways
(16-way in the paper).  Sets are allocated lazily — workloads touch a tiny
fraction of a 16 MB cache's sets, and lazy allocation keeps memory and
construction time proportional to the touched footprint.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cache.line import LineEntry
from repro.cache.replacement import TreePLRU


class ClusterStore:
    """Associative storage of one cluster, with a shared tag array view."""

    def __init__(self, cluster_index: int, num_sets: int, ways: int):
        self.cluster_index = cluster_index
        self.num_sets = num_sets
        self.ways = ways
        # Bank faults shrink usable associativity: at most
        # ``effective_ways`` lines may reside per set.  Equal to ``ways``
        # (full capacity) unless degraded via set_effective_ways.
        self.effective_ways = ways
        self._sets: dict[int, list[Optional[LineEntry]]] = {}
        self._plru: dict[int, TreePLRU] = {}
        self.lines_resident = 0

    def _set(self, index: int) -> list[Optional[LineEntry]]:
        if not 0 <= index < self.num_sets:
            raise ValueError(f"set index {index} out of range")
        ways = self._sets.get(index)
        if ways is None:
            ways = [None] * self.ways
            self._sets[index] = ways
        return ways

    def _tree(self, index: int) -> TreePLRU:
        tree = self._plru.get(index)
        if tree is None:
            tree = TreePLRU(self.ways)
            self._plru[index] = tree
        return tree

    # -- tag array operations -------------------------------------------------

    def lookup(self, index: int, tag: int) -> Optional[tuple[int, LineEntry]]:
        """Tag match: (way, entry) or None.  Does not update LRU state."""
        ways = self._sets.get(index)
        if ways is None:
            return None
        for way, entry in enumerate(ways):
            if entry is not None and entry.tag == tag:
                return way, entry
        return None

    def touch(self, index: int, way: int) -> None:
        """Update pseudo-LRU state for an access to ``way``."""
        self._tree(index).touch(way)

    # -- data array operations ---------------------------------------------------

    def insert(
        self, index: int, entry: LineEntry, avoid_in_transit: bool = True
    ) -> Optional[LineEntry]:
        """Place ``entry`` in set ``index``; returns the evicted line, if any.

        A free way is used when available; otherwise the pseudo-LRU victim
        is evicted.  Lines currently migrating are not chosen as victims
        (their departure is already scheduled) unless every way is in
        transit.
        """
        ways = self._set(index)
        if self.effective_ways == self.ways:
            for way, existing in enumerate(ways):
                if existing is None:
                    ways[way] = entry
                    self._tree(index).touch(way)
                    self.lines_resident += 1
                    return None
        else:
            # Degraded capacity: a free way only counts when the set is
            # below its effective associativity.
            free_way = None
            occupied = 0
            for way, existing in enumerate(ways):
                if existing is None:
                    if free_way is None:
                        free_way = way
                else:
                    occupied += 1
            if free_way is not None and occupied < self.effective_ways:
                ways[free_way] = entry
                self._tree(index).touch(free_way)
                self.lines_resident += 1
                return None
        tree = self._tree(index)
        victim_way = tree.victim()
        if avoid_in_transit and ways[victim_way] is not None and ways[victim_way].in_transit:
            for way, existing in enumerate(ways):
                if existing is not None and not existing.in_transit:
                    victim_way = way
                    break
        if ways[victim_way] is None:
            # Only reachable under degraded capacity: the PLRU victim
            # points at a hole.  Evict the first resident line instead,
            # preferring one not in transit.
            chosen = None
            fallback = None
            for way, existing in enumerate(ways):
                if existing is not None:
                    if fallback is None:
                        fallback = way
                    if not (avoid_in_transit and existing.in_transit):
                        chosen = way
                        break
            victim_way = chosen if chosen is not None else fallback
        victim = ways[victim_way]
        ways[victim_way] = entry
        tree.touch(victim_way)
        return victim

    def remove(self, index: int, tag: int) -> LineEntry:
        """Remove and return the line with ``tag`` from set ``index``."""
        ways = self._sets.get(index)
        if ways is not None:
            for way, entry in enumerate(ways):
                if entry is not None and entry.tag == tag:
                    ways[way] = None
                    self.lines_resident -= 1
                    return entry
        raise KeyError(
            f"line tag={tag:#x} index={index} not in cluster "
            f"{self.cluster_index}"
        )

    def free_ways(self, index: int) -> int:
        ways = self._sets.get(index)
        if ways is None:
            return self.ways
        return sum(1 for entry in ways if entry is None)

    def entries(self) -> Iterator[tuple[int, int, LineEntry]]:
        """All resident lines as (index, way, entry)."""
        for index, ways in self._sets.items():
            for way, entry in enumerate(ways):
                if entry is not None:
                    yield index, way, entry

"""Address decomposition for the clustered NUCA L2.

The paper's placement policy (Section 4.2.2): the low-order bits of the
cache *tag* pick the initial cluster, the low-order bits of the cache
*index* pick the bank within the cluster, and the remaining index bits pick
the set within the bank.  After migration the tag's cluster bits no longer
identify the line's cluster — which is exactly why the search policy
exists — but the index (and therefore the bank/set position *within*
whatever cluster holds the line) never changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chip import ChipConfig


def _log2_exact(value: int, what: str) -> int:
    bits = value.bit_length() - 1
    if value <= 0 or (1 << bits) != value:
        raise ValueError(f"{what} must be a power of two, got {value}")
    return bits


@dataclass(frozen=True)
class DecodedAddress:
    """A physical address split into NUCA placement fields."""

    address: int
    line_address: int   # address >> offset_bits
    tag: int
    index: int          # set index within a cluster
    home_cluster: int   # initial cluster (low-order tag bits)
    bank: int           # bank within the cluster (low-order index bits)
    set_in_bank: int    # set within the bank (high-order index bits)


class AddressMap:
    """Decodes addresses for a given chip configuration."""

    def __init__(self, config: ChipConfig):
        config.validate()
        self.config = config
        self.offset_bits = _log2_exact(config.line_bytes, "line size")
        self.index_bits = _log2_exact(
            config.sets_per_cluster, "sets per cluster"
        )
        self.bank_bits = _log2_exact(
            config.banks_per_cluster, "banks per cluster"
        )
        self.cluster_bits = _log2_exact(config.num_clusters, "cluster count")
        self.sets_per_cluster = config.sets_per_cluster

    def decode(self, address: int) -> DecodedAddress:
        if address < 0:
            raise ValueError("addresses are non-negative")
        line_address = address >> self.offset_bits
        index = line_address & (self.sets_per_cluster - 1)
        tag = line_address >> self.index_bits
        home_cluster = tag & ((1 << self.cluster_bits) - 1)
        bank = index & ((1 << self.bank_bits) - 1)
        set_in_bank = index >> self.bank_bits
        return DecodedAddress(
            address=address,
            line_address=line_address,
            tag=tag,
            index=index,
            home_cluster=home_cluster,
            bank=bank,
            set_in_bank=set_in_bank,
        )

    def line_of(self, address: int) -> int:
        return address >> self.offset_bits

    def compose(self, tag: int, index: int) -> int:
        """Inverse of :meth:`decode` (line-aligned address)."""
        return ((tag << self.index_bits) | index) << self.offset_bits

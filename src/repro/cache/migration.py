"""Cache-line migration policy, tailored to the 3D architecture (§4.2.3).

Data accessed repeatedly by a processor migrates *gradually* — one cluster
per move — toward that processor:

* **Intra-layer**: toward the accessing CPU's cluster, skipping clusters
  that contain *other* processors (so their local L2 access patterns are
  not disturbed).
* **Inter-layer**: toward the cluster containing the pillar closest to the
  accessing processor, on the data's own layer.  Data is never migrated
  across layers: clusters reachable through a single pillar hop are
  already "local vicinity", and avoiding cross-layer moves cuts migration
  frequency (and hence network traffic and power).

Migration triggers through a small saturating counter per line, reset when
the accessing processor changes, which prevents ping-ponging of data shared
by multiple processors.  Lazy migration (as in CMP-DNUCA) keeps the line
searchable at its old location until the transfer completes, avoiding
false misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.chip import ChipTopology, Cluster


@dataclass
class MigrationConfig:
    """Migration tunables."""

    enabled: bool = True
    trigger_threshold: int = 2     # accesses by same CPU before a move
    transfer_flits: int = 4        # one cache line per migration packet
    # CMP-DNUCA (Beckmann & Wood) moves blocks along their *bankset*
    # chain — a one-dimensional path — rather than freely through the 2D
    # cluster grid.  When set, migration steps are restricted to the x
    # axis of the cluster grid, reproducing that policy's weaker
    # convergence.
    bankset_chains: bool = False


class MigrationPolicy:
    """Decides migration targets on the placed chip topology."""

    def __init__(self, topology: ChipTopology, config: Optional[MigrationConfig] = None):
        self.topology = topology
        self.config = config or MigrationConfig()

    # -- target selection -------------------------------------------------------

    def _tile_step_toward(
        self, cluster: Cluster, target_tile: tuple[int, int], cpu_id: int
    ) -> Optional[Cluster]:
        """One cluster-grid step from ``cluster`` toward ``target_tile``.

        Prefers the axis with the larger remaining distance; skips over
        clusters occupied by processors other than ``cpu_id`` by continuing
        in the same direction (the paper's skip rule).  Returns ``None``
        when no admissible step exists.
        """
        topo = self.topology
        tx, ty = target_tile
        dx = tx - cluster.tile_x
        dy = ty - cluster.tile_y
        if dx == 0 and dy == 0:
            return None
        steps: list[tuple[int, int]] = []
        if abs(dx) >= abs(dy) and dx != 0:
            steps.append((1 if dx > 0 else -1, 0))
        if dy != 0:
            steps.append((0, 1 if dy > 0 else -1))
        if abs(dx) < abs(dy) and dx != 0:
            steps.append((1 if dx > 0 else -1, 0))
        for step_x, step_y in steps:
            nx, ny = cluster.tile_x + step_x, cluster.tile_y + step_y
            while True:
                candidate = topo.cluster_by_tile(cluster.layer, nx, ny)
                if candidate is None:
                    break
                foreign_cpu = any(c != cpu_id for c in candidate.cpus)
                if not foreign_cpu:
                    return candidate
                # Skip over the processor cluster, same direction.
                if (nx, ny) == (tx, ty):
                    break
                nx += step_x
                ny += step_y
        return None

    def target_cluster(self, line_cluster_index: int, cpu_id: int) -> Optional[int]:
        """Where one migration step should move the line, or ``None``.

        ``None`` means the line is already as close as the policy wants it
        (local cluster, the CPU's vertical vicinity, or no admissible step).
        """
        topo = self.topology
        cluster = topo.clusters[line_cluster_index]
        cpu_coord = topo.cpu_positions[cpu_id]
        cpu_cluster = topo.cpu_cluster(cpu_id)

        if cluster.layer == cpu_cluster.layer and cluster.layer == cpu_coord.z:
            # Intra-layer: gradual move toward the CPU's own cluster.
            if cluster.index == cpu_cluster.index:
                return None
            if self.config.bankset_chains:
                # B&W bankset migration: only along the x axis.
                target_tile = (cpu_cluster.tile_x, cluster.tile_y)
                if target_tile == (cluster.tile_x, cluster.tile_y):
                    return None
            else:
                target_tile = (cpu_cluster.tile_x, cpu_cluster.tile_y)
            target = self._tile_step_toward(cluster, target_tile, cpu_id)
            return target.index if target is not None else None

        # Inter-layer: move toward the pillar nearest the accessing CPU,
        # staying on the line's own layer.
        pillar_xy = topo.nearest_pillar(cpu_coord)
        pillar_cluster = topo.cluster_at(
            type(cpu_coord)(pillar_xy[0], pillar_xy[1], cluster.layer)
        )
        if cluster.index == pillar_cluster.index:
            return None
        target = self._tile_step_toward(
            cluster, (pillar_cluster.tile_x, pillar_cluster.tile_y), cpu_id
        )
        return target.index if target is not None else None

    # -- trigger logic --------------------------------------------------------------

    def should_migrate(self, credit: int) -> bool:
        return self.config.enabled and credit >= self.config.trigger_threshold

    def transfer_latency(self, from_cluster: int, to_cluster: int) -> float:
        """Cycles for the line transfer, used by lazy migration.

        A coarse hop-distance estimate is sufficient here: it only controls
        how long the line stays pinned at its old location.
        """
        topo = self.topology
        hops = topo.cluster_distance_hops(
            topo.clusters[from_cluster], topo.clusters[to_cluster]
        )
        return float(hops + self.config.transfer_flits)

"""NUCA L2 cache substrate: banks, clusters, tags, and management policies.

Implements Section 4 of the paper: the cluster organization with per-cluster
tag arrays, the two-step search policy, the low-order-tag-bit initial
placement, tree pseudo-LRU replacement, and the 3D-tailored gradual
migration policy with lazy (false-miss-free) migration.
"""

from repro.cache.addressing import AddressMap, DecodedAddress
from repro.cache.line import LineEntry
from repro.cache.replacement import TreePLRU
from repro.cache.cluster_store import ClusterStore
from repro.cache.nuca import NucaL2, AccessOutcome, AccessType
from repro.cache.search import SearchPolicy, SearchPlan
from repro.cache.migration import MigrationPolicy, MigrationConfig
from repro.cache.replication import ReplicatingNucaL2, ReplicationConfig

__all__ = [
    "AddressMap",
    "DecodedAddress",
    "LineEntry",
    "TreePLRU",
    "ClusterStore",
    "NucaL2",
    "AccessOutcome",
    "AccessType",
    "SearchPolicy",
    "SearchPlan",
    "MigrationPolicy",
    "MigrationConfig",
    "ReplicatingNucaL2",
    "ReplicationConfig",
]

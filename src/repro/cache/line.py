"""L2 cache line metadata.

A line entry lives inside one cluster's storage; its fields support the
migration policy (access counting, last accessor) and the lazy-migration
mechanism (a line being moved stays visible at its old location until the
transfer completes, preventing false misses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class LineEntry:
    """One cache line resident in the L2."""

    tag: int
    index: int
    dirty: bool = False
    # Read-only replica installed by the replication extension; second
    # class: droppable on eviction, never migrated, not in the location map.
    is_replica: bool = False
    # Migration support
    last_accessor: Optional[int] = None      # CPU id of last toucher
    migration_credit: int = 0                # saturating migration counter
    in_transit_until: float = -1.0           # cycle the pending move lands
    pending_cluster: Optional[int] = None    # move target, if in transit
    # Statistics
    access_count: int = 0
    migrations: int = 0

    def touch(self, cpu_id: int) -> None:
        self.access_count += 1
        self.last_accessor = cpu_id

    @property
    def in_transit(self) -> bool:
        return self.pending_cluster is not None

    def begin_migration(self, target_cluster: int, complete_cycle: float) -> None:
        if self.in_transit:
            raise RuntimeError("line is already migrating")
        self.pending_cluster = target_cluster
        self.in_transit_until = complete_cycle
        self.migration_credit = 0

    def finish_migration(self) -> int:
        if not self.in_transit:
            raise RuntimeError("line is not migrating")
        target = self.pending_cluster
        self.pending_cluster = None
        self.in_transit_until = -1.0
        self.migrations += 1
        return target

"""The two-step cache-line search policy (Section 4.2.1).

Step 1: the accessing processor searches its own cluster's tag array (a
direct connection) and, in parallel, the tag arrays of the neighbouring
clusters — the in-plane adjacent clusters plus all vertically neighbouring
clusters, which receive the tag broadcast through the pillar.

Step 2: on a step-1 miss, the request is multicast to every remaining
cluster.  A miss everywhere is an L2 miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.chip import ChipTopology, Cluster
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class SearchPlan:
    """The clusters probed at each step for one accessing CPU."""

    cpu_id: int
    local_cluster: int
    step1: tuple[int, ...]   # local + neighbours (probed in parallel)
    step2: tuple[int, ...]   # everything else (multicast)

    def step_of(self, cluster_index: int) -> int:
        """1 if the cluster is probed in step 1, else 2."""
        return 1 if cluster_index in self.step1 else 2


class SearchPolicy:
    """Builds and caches per-CPU search plans for a placed chip."""

    def __init__(
        self, topology: ChipTopology, tracer: Optional[Tracer] = None
    ):
        self.topology = topology
        self._plans: dict[int, SearchPlan] = {}
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def plan(self, cpu_id: int) -> SearchPlan:
        cached = self._plans.get(cpu_id)
        if cached is not None:
            return cached
        topo = self.topology
        local = topo.cpu_cluster(cpu_id)
        step1: list[int] = [local.index]
        for neighbor in topo.in_plane_neighbors(local):
            step1.append(neighbor.index)
        for neighbor in topo.vertical_neighbors(local):
            step1.append(neighbor.index)
        step1_set = set(step1)
        step2 = tuple(
            cluster.index
            for cluster in topo.clusters
            if cluster.index not in step1_set
        )
        plan = SearchPlan(
            cpu_id=cpu_id,
            local_cluster=local.index,
            step1=tuple(step1),
            step2=step2,
        )
        self._plans[cpu_id] = plan
        tracer = self._tracer
        if tracer.enabled:
            # Cold path (once per CPU): stamp the plan's shape at ts 0 so
            # the timeline opens with each CPU's search topology.
            track = tracer.track(f"cpu.{cpu_id}")
            tracer.search_plan(0.0, track, cpu_id, len(plan.step1), len(plan.step2))
        return plan

    def clusters_probed(self, cpu_id: int, found_step: int) -> int:
        """How many tag arrays were activated to resolve an access.

        Used for the L2 dynamic-power accounting: a step-1 hit probes only
        the step-1 set; a step-2 hit (or L2 miss) probes every cluster.
        """
        plan = self.plan(cpu_id)
        if found_step == 1:
            return len(plan.step1)
        return len(plan.step1) + len(plan.step2)

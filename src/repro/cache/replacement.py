"""Tree pseudo-LRU replacement (the paper's L2 replacement policy).

A binary tree of direction bits over the ways of a set: each access flips
the internal nodes on the path to the accessed way to point *away* from it;
the victim is found by following the bits from the root.  For a 16-way set
the state is 15 bits.
"""

from __future__ import annotations


class TreePLRU:
    """Pseudo-LRU tree over ``ways`` ways (power of two)."""

    def __init__(self, ways: int):
        if ways < 2 or ways & (ways - 1):
            raise ValueError("ways must be a power of two >= 2")
        self.ways = ways
        self.levels = ways.bit_length() - 1
        self.bits = 0  # node i's bit: 0 -> left subtree is colder

    def touch(self, way: int) -> None:
        """Mark ``way`` as most recently used."""
        if not 0 <= way < self.ways:
            raise ValueError(f"way {way} out of range")
        node = 1
        for level in range(self.levels - 1, -1, -1):
            bit = (way >> level) & 1
            # Point the node away from the touched way.
            if bit:
                self.bits &= ~(1 << node)
            else:
                self.bits |= 1 << node
            node = (node << 1) | bit

    def victim(self) -> int:
        """The way the tree currently designates for eviction."""
        node = 1
        way = 0
        for __ in range(self.levels):
            bit = (self.bits >> node) & 1
            way = (way << 1) | bit
            node = (node << 1) | bit
        return way

    def reset(self) -> None:
        self.bits = 0

"""Replication-based L2 management (extension).

The paper's related work (Section 2.1) discusses the other family of
NUCA management schemes: instead of *migrating* the only copy of a line
toward its accessor, *replicate* it — keep the home copy where placement
put it and install extra copies near frequent remote readers (NuRapid's
replication-based management, Zhang & Asanovic's victim replication).

`ReplicatingNucaL2` layers that policy over the base NUCA:

* a read hit that resolves in step 2 installs a **replica** in the
  accessing CPU's local cluster (capacity permitting) once the line has
  shown reuse;
* subsequent reads hit the nearest copy (local replica if present);
* writes are the hard part of replication: the writer must invalidate
  every replica before updating the primary copy, and the timing layer
  charges that traffic;
* replicas are second-class: they never migrate, and eviction simply
  drops them (the primary copy still holds the data).

This is an extension beyond the paper's evaluated design — the paper
chose migration — included to let users compare the two families on the
same 3D substrate (see ``benchmarks/test_ablation_replication.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.chip import ChipTopology
from repro.sim.stats import StatsRegistry
from repro.cache.line import LineEntry
from repro.cache.migration import MigrationConfig
from repro.cache.nuca import AccessOutcome, AccessType, NucaL2


@dataclass
class ReplicationConfig:
    """Replication tunables."""

    enabled: bool = True
    # Remote read hits by the same CPU before a replica is installed.
    trigger_threshold: int = 2
    # Refuse to replicate into a set with fewer free ways than this
    # (protects primary-copy capacity in the local cluster).
    min_free_ways: int = 2


class ReplicatingNucaL2(NucaL2):
    """NUCA L2 with read-replication instead of (or on top of) migration.

    By default migration is disabled — this models the replication
    *family* of schemes; pass a migration config to combine both.
    """

    def __init__(
        self,
        topology: ChipTopology,
        replication: Optional[ReplicationConfig] = None,
        migration_config: Optional[MigrationConfig] = None,
        stats: Optional[StatsRegistry] = None,
        tracer=None,
    ):
        super().__init__(
            topology,
            migration_config or MigrationConfig(enabled=False),
            stats=stats,
            tracer=tracer,
        )
        self.replication = replication or ReplicationConfig()
        # line address -> {cluster index holding a replica}
        self._replicas: dict[int, set[int]] = {}
        # (line address, cpu) remote-reuse counters
        self._remote_reads: dict[tuple[int, int], int] = {}
        scope = self.stats.scope("l2")
        self._replicas_made = scope.counter("replicas_created")
        self._replica_hits = scope.counter("replica_hits")
        self._replica_invals = scope.counter("replica_invalidations")

    # -- queries ---------------------------------------------------------

    def replicas_of(self, address: int) -> frozenset[int]:
        return frozenset(
            self._replicas.get(self.addr_map.line_of(address), ())
        )

    @property
    def replica_count(self) -> int:
        return sum(len(clusters) for clusters in self._replicas.values())

    # -- access path -----------------------------------------------------

    def access(
        self,
        cpu_id: int,
        address: int,
        access_type: AccessType = AccessType.READ,
        cycle: float = 0.0,
    ) -> AccessOutcome:
        decoded = self.addr_map.decode(address)
        line = decoded.line_address
        replicas = self._replicas.get(line)

        if access_type == AccessType.WRITE and replicas:
            # Writer invalidates every replica before updating the primary.
            self._replica_invals.increment(len(replicas))
            for cluster_index in list(replicas):
                self._drop_replica(line, decoded, cluster_index)

        local = self.search.plan(cpu_id).local_cluster
        if (
            access_type != AccessType.WRITE
            and replicas
            and local in replicas
            and self.clusters[local].lookup(decoded.index, decoded.tag)
            is not None
        ):
            # Local replica hit: cheap step-1 resolution; primary copy's
            # metadata is untouched (replicas are read-only caches).
            self._replica_hits.increment()
            self._hits.increment()
            self._hits_step1.increment()
            self._hits_local.increment()
            return AccessOutcome(
                address=decoded.address,
                cpu_id=cpu_id,
                hit=True,
                cluster=local,
                bank_node=self.bank_node(local, decoded),
                tag_node=self.tag_node(local),
                search_step=1,
                decoded=decoded,
                access_type=access_type,
            )

        outcome = super().access(cpu_id, address, access_type, cycle)

        # Consider replicating after repeated remote read hits.
        if (
            self.replication.enabled
            and outcome.hit
            and access_type != AccessType.WRITE
            and outcome.search_step == 2
            and outcome.cluster != local
        ):
            key = (line, cpu_id)
            count = self._remote_reads.get(key, 0) + 1
            self._remote_reads[key] = count
            if count >= self.replication.trigger_threshold:
                if self._install_replica(line, decoded, local):
                    del self._remote_reads[key]
        return outcome

    # -- replica mechanics --------------------------------------------------

    def _install_replica(self, line: int, decoded, cluster_index: int) -> bool:
        store = self.clusters[cluster_index]
        if store.free_ways(decoded.index) < self.replication.min_free_ways:
            return False
        entry = LineEntry(
            tag=decoded.tag, index=decoded.index, is_replica=True
        )
        store.insert(decoded.index, entry)
        self._replicas.setdefault(line, set()).add(cluster_index)
        self._replicas_made.increment()
        return True

    def _drop_replica(self, line: int, decoded, cluster_index: int) -> None:
        clusters = self._replicas.get(line)
        if not clusters or cluster_index not in clusters:
            return
        # The replica may already have been evicted by capacity pressure;
        # tolerate that (the map is advisory for replicas).
        try:
            self.clusters[cluster_index].remove(decoded.index, decoded.tag)
        except KeyError:
            pass
        clusters.discard(cluster_index)
        if not clusters:
            del self._replicas[line]

    def _note_replica_evicted(self, entry: LineEntry, cluster_index: int) -> None:
        """Capacity pressure displaced a replica: clean the replica map."""
        line = (
            self.addr_map.compose(entry.tag, entry.index)
            >> self.addr_map.offset_bits
        )
        clusters = self._replicas.get(line)
        if clusters is not None:
            clusters.discard(cluster_index)
            if not clusters:
                del self._replicas[line]

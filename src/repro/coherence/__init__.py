"""L1 caches and distributed directory-based MSI coherence.

The paper keeps private L1 caches coherent with a distributed
directory-based protocol over the MSI states; L1s are write-through
(Table 4), so writes always reach the L2 and dirty data never hides in an
L1.  The coherence layer is functional — it reports which invalidation
messages each access implies so the timing layer can charge their network
traffic.
"""

from repro.coherence.l1cache import L1Cache, L1Config
from repro.coherence.directory import Directory
from repro.coherence.protocol import CoherentL1System, CoherenceEvent

__all__ = [
    "L1Cache",
    "L1Config",
    "Directory",
    "CoherentL1System",
    "CoherenceEvent",
]

"""Private per-CPU L1 cache (functional, write-through).

Table 4: 64 KB split I/D, 2-way, 64 B lines, 3-cycle access, write-through.
Write-through means an L1 line is never dirty: evictions and invalidations
are silent drops, and every store is propagated to the L2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class L1Config:
    """Geometry of one L1 array (the I and D sides are separate arrays)."""

    size_kb: int = 64
    ways: int = 2
    line_bytes: int = 64
    hit_cycles: int = 3
    write_allocate: bool = True    # write-through + write-allocate

    @property
    def num_sets(self) -> int:
        lines = self.size_kb * 1024 // self.line_bytes
        if lines % self.ways:
            raise ValueError("L1 lines must divide evenly into ways")
        return lines // self.ways


class L1Cache:
    """One L1 array with true-LRU replacement over its (few) ways."""

    def __init__(self, cpu_id: int, config: Optional[L1Config] = None):
        self.cpu_id = cpu_id
        self.config = config or L1Config()
        if self.config.num_sets & (self.config.num_sets - 1):
            raise ValueError("L1 set count must be a power of two")
        self._offset_bits = self.config.line_bytes.bit_length() - 1
        self._set_mask = self.config.num_sets - 1
        # sets[i] is an MRU-ordered list of line addresses (most recent first)
        self._sets: dict[int, list[int]] = {}
        self.hits = 0
        self.misses = 0

    def _set_index(self, line_address: int) -> int:
        return line_address & self._set_mask

    def line_of(self, address: int) -> int:
        return address >> self._offset_bits

    # -- operations ------------------------------------------------------------

    def lookup(self, address: int) -> bool:
        """Probe (and LRU-update on hit) for ``address``."""
        line = self.line_of(address)
        ways = self._sets.get(self._set_index(line))
        if ways is not None and line in ways:
            ways.remove(line)
            ways.insert(0, line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, address: int) -> Optional[int]:
        """Install a line; returns the evicted line address, if any."""
        line = self.line_of(address)
        index = self._set_index(line)
        ways = self._sets.setdefault(index, [])
        if line in ways:
            ways.remove(line)
            ways.insert(0, line)
            return None
        ways.insert(0, line)
        if len(ways) > self.config.ways:
            return ways.pop()
        return None

    def contains(self, address: int) -> bool:
        line = self.line_of(address)
        ways = self._sets.get(self._set_index(line))
        return ways is not None and line in ways

    def invalidate(self, address: int) -> bool:
        """Drop a line if present (coherence invalidation); True if it was."""
        line = self.line_of(address)
        index = self._set_index(line)
        ways = self._sets.get(index)
        if ways is not None and line in ways:
            ways.remove(line)
            return True
        return False

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    @property
    def lines_resident(self) -> int:
        return sum(len(ways) for ways in self._sets.values())

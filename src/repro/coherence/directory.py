"""Distributed sharer directory for the L1 MSI protocol.

Tracks which CPUs' L1 caches hold each line.  Because the L1s are
write-through there is no M state to track at line granularity beyond
"being written now": a write simply invalidates all other sharers and
updates the L2.  The directory is logically distributed (the paper gives
each processor a directory for its own L1 lines); functionally one sharded
map captures the same information, and the timing layer charges the
invalidation messages to the network between the writer and each sharer.
"""

from __future__ import annotations

from typing import Iterable


class Directory:
    """line address -> set of CPU ids whose L1 holds the line."""

    def __init__(self, num_cpus: int):
        self.num_cpus = num_cpus
        self._sharers: dict[int, set[int]] = {}
        self.invalidations_sent = 0

    def sharers_of(self, line_address: int) -> frozenset[int]:
        return frozenset(self._sharers.get(line_address, ()))

    def add_sharer(self, line_address: int, cpu_id: int) -> None:
        if not 0 <= cpu_id < self.num_cpus:
            raise ValueError(f"unknown CPU {cpu_id}")
        self._sharers.setdefault(line_address, set()).add(cpu_id)

    def drop_sharer(self, line_address: int, cpu_id: int) -> None:
        sharers = self._sharers.get(line_address)
        if sharers is not None:
            sharers.discard(cpu_id)
            if not sharers:
                del self._sharers[line_address]

    def write_invalidate(self, line_address: int, writer: int) -> list[int]:
        """Invalidate every sharer other than the writer.

        Returns the list of CPUs that must receive an invalidation message;
        the writer's own copy (if any) is retained.
        """
        sharers = self._sharers.get(line_address)
        if not sharers:
            return []
        targets = sorted(cpu for cpu in sharers if cpu != writer)
        if targets:
            self.invalidations_sent += len(targets)
            kept = {writer} if writer in sharers else set()
            if kept:
                self._sharers[line_address] = kept
            else:
                del self._sharers[line_address]
        return targets

    def invalidate_line(self, line_address: int) -> list[int]:
        """Invalidate every sharer (L2 eviction of the line)."""
        sharers = self._sharers.pop(line_address, set())
        targets = sorted(sharers)
        self.invalidations_sent += len(targets)
        return targets

    def tracked_lines(self) -> int:
        return len(self._sharers)

    def total_sharers(self) -> int:
        return sum(len(s) for s in self._sharers.values())

"""The MSI protocol engine binding L1 caches to the directory.

`CoherentL1System.access` is the front door for every CPU memory
reference.  It filters references through the private L1s and returns a
:class:`CoherenceEvent` describing what the L2 and the network must do:
whether an L2 transaction is needed, and which L1s must receive
invalidations.  Consistent with the write-through L1s, the protocol is:

* **read / ifetch hit** — L1 satisfies it; no L2 traffic.
* **read / ifetch miss** — L2 read; the reader becomes a sharer.
* **write** — always propagated to the L2 (write-through); all *other*
  sharers are invalidated.  With no-write-allocate (default), a writing
  CPU that does not hold the line does not gain it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.nuca import AccessType
from repro.coherence.l1cache import L1Cache, L1Config
from repro.coherence.directory import Directory
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass
class CoherenceEvent:
    """Consequences of one CPU memory reference."""

    cpu_id: int
    address: int
    access_type: AccessType
    l1_hit: bool
    needs_l2: bool
    invalidate_cpus: list[int] = field(default_factory=list)
    l1_evicted_line: Optional[int] = None


class CoherentL1System:
    """All private L1s plus the sharer directory, MSI over write-through."""

    def __init__(
        self,
        num_cpus: int,
        config: Optional[L1Config] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.config = config or L1Config()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Per-CPU tracks for writer-initiated invalidations; L2-initiated
        # back-invalidations land on one shared "coherence" track.
        self._cpu_tracks = [
            self.tracer.track(f"cpu.{cpu}") for cpu in range(num_cpus)
        ]
        self._sys_track = self.tracer.track("coherence")
        # Split I/D: instruction fetches and data references index
        # separate 64 KB arrays, as in Table 4.
        self.dcaches = [L1Cache(cpu, self.config) for cpu in range(num_cpus)]
        self.icaches = [L1Cache(cpu, self.config) for cpu in range(num_cpus)]
        self.directory = Directory(num_cpus)
        # Small write-combining buffer per CPU (8 lines, LRU): stores to a
        # line already in the buffer coalesce into the earlier
        # write-through transaction instead of re-writing the L2.
        self._write_buffers: list[list[int]] = [[] for __ in range(num_cpus)]
        self._write_buffer_entries = 8
        self.coalesced_writes = 0

    def _array(self, cpu_id: int, access_type: AccessType) -> L1Cache:
        if access_type == AccessType.IFETCH:
            return self.icaches[cpu_id]
        return self.dcaches[cpu_id]

    def access(
        self,
        cpu_id: int,
        address: int,
        access_type: AccessType,
        cycle: float = 0.0,
    ) -> CoherenceEvent:
        """Process one reference; returns the resulting coherence event.

        ``cycle`` only timestamps trace events; callers advancing
        simulated time should pass their clock.
        """
        cache = self._array(cpu_id, access_type)
        line = cache.line_of(address)

        if access_type == AccessType.WRITE:
            hit = cache.lookup(address)
            buffer = self._write_buffers[cpu_id]
            if line in buffer:
                # Coalesced in the write buffer: the earlier write-through
                # already updated the L2 and invalidated the sharers.
                buffer.remove(line)
                buffer.insert(0, line)
                self.coalesced_writes += 1
                return CoherenceEvent(
                    cpu_id=cpu_id,
                    address=address,
                    access_type=access_type,
                    l1_hit=hit,
                    needs_l2=False,
                )
            buffer.insert(0, line)
            if len(buffer) > self._write_buffer_entries:
                buffer.pop()
            invalidated = self.directory.write_invalidate(line, cpu_id)
            tracer = self.tracer
            if tracer.enabled and invalidated:
                tracer.coherence(
                    cycle,
                    self._cpu_tracks[cpu_id],
                    "write_invalidate",
                    line,
                    tuple(invalidated),
                )
            for target in invalidated:
                self.dcaches[target].invalidate(address)
                self.icaches[target].invalidate(address)
                target_buffer = self._write_buffers[target]
                if line in target_buffer:
                    target_buffer.remove(line)
            evicted = None
            if not hit and self.config.write_allocate:
                evicted = cache.fill(address)
                self.directory.add_sharer(line, cpu_id)
                if evicted is not None:
                    self.directory.drop_sharer(evicted, cpu_id)
            # Write-through: the L2 sees every store.
            return CoherenceEvent(
                cpu_id=cpu_id,
                address=address,
                access_type=access_type,
                l1_hit=hit,
                needs_l2=True,
                invalidate_cpus=invalidated,
                l1_evicted_line=evicted,
            )

        # READ / IFETCH
        if cache.lookup(address):
            return CoherenceEvent(
                cpu_id=cpu_id,
                address=address,
                access_type=access_type,
                l1_hit=True,
                needs_l2=False,
            )
        evicted = cache.fill(address)
        self.directory.add_sharer(line, cpu_id)
        if evicted is not None:
            self.directory.drop_sharer(evicted, cpu_id)
        return CoherenceEvent(
            cpu_id=cpu_id,
            address=address,
            access_type=access_type,
            l1_hit=False,
            needs_l2=True,
            l1_evicted_line=evicted,
        )

    def l2_eviction(self, line_address: int, cycle: float = 0.0) -> list[int]:
        """Back-invalidate L1 copies when the L2 evicts a line (inclusion)."""
        targets = self.directory.invalidate_line(line_address)
        tracer = self.tracer
        if tracer.enabled and targets:
            tracer.coherence(
                cycle, self._sys_track, "l2_eviction", line_address,
                tuple(targets),
            )
        address = line_address * self.config.line_bytes
        for target in targets:
            self.dcaches[target].invalidate(address)
            self.icaches[target].invalidate(address)
        return targets

    # -- statistics --------------------------------------------------------------

    def miss_rate(self, cpu_id: Optional[int] = None) -> float:
        caches = (
            [self.dcaches[cpu_id], self.icaches[cpu_id]]
            if cpu_id is not None
            else self.dcaches + self.icaches
        )
        hits = sum(c.hits for c in caches)
        misses = sum(c.misses for c in caches)
        total = hits + misses
        return misses / total if total else 0.0

"""dTDMA bus arbiter: dynamic slot allocation among active clients.

The arbiter implements the defining property of the dTDMA bus [Richardson
et al., VLSI Design 2006]: the TDMA frame always contains exactly one slot
per *active* client, growing and shrinking as clients start and stop
transmitting.  At flit granularity this is equivalent to round-robin
arbitration over the set of clients with pending flits, which is how we
realize it cycle by cycle: every active client receives 1/k of the bus
bandwidth when k clients are active, and the bus idles only when no client
has data — i.e. it is nearly 100% bandwidth-efficient.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Optional

from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer


def control_wire_count(num_layers: int) -> int:
    """Control wires from the arbiter to all layers: ``3n + log2(n)``.

    This is the paper's formula for an ``n``-layer pillar (Section 3.1);
    e.g. a 4-layer chip needs 3*4 + 2 = 14 control wires per pillar.
    """
    if num_layers < 1:
        raise ValueError("a pillar spans at least one layer")
    if num_layers == 1:
        return 3
    return 3 * num_layers + math.ceil(math.log2(num_layers))


class DynamicTDMAArbiter:
    """Grants the bus to one active client per cycle, round-robin.

    Clients are arbitrary hashable identifiers.  The caller supplies the set
    of clients that currently have a transmittable flit; the arbiter picks
    the next one after the previous grant in a fixed circular order.  This
    realizes the dynamically sized TDMA frame: with k active clients the
    grant pattern cycles through exactly those k clients.
    """

    def __init__(
        self,
        clients: Iterable[Hashable],
        stats: Optional[StatsRegistry] = None,
        tracer: Optional[Tracer] = None,
        track: int = 0,
    ):
        self.clients = list(clients)
        if not self.clients:
            raise ValueError("arbiter needs at least one client")
        self._position = {client: index for index, client in enumerate(self.clients)}
        self._last_granted_index = len(self.clients) - 1
        self.stats = stats or StatsRegistry("dtdma.arbiter")
        # Frame grow/shrink events land on the owning bus's track.
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._track = track
        self._frame_size = 0
        scope = self.stats.scope("arbiter")
        self._grants = scope.counter("grants")
        self._idle = scope.counter("idle_cycles")
        self._active_hist = scope.histogram("active_clients", 1.0, 64)

    def add_client(self, client: Hashable) -> None:
        if client in self._position:
            raise ValueError(f"duplicate client {client!r}")
        self._position[client] = len(self.clients)
        self.clients.append(client)

    def remove_client(self, client: Hashable) -> None:
        """Reclaim ``client``'s slot from the TDMA frame.

        Used when a transceiver dies (pillar/TSV fault): the frame shrinks
        so surviving clients immediately share the reclaimed bandwidth.
        Round-robin priority is preserved — the client after the removed
        one in circular order is next in line — and the utilization
        counters (grants/idle) are untouched, so bandwidth accounting
        stays consistent across the removal.  Removing every client is
        permitted (a fully dead bus); :meth:`grant` then always returns
        ``None``.
        """
        index = self._position.pop(client, None)
        if index is None:
            raise ValueError(f"unknown client {client!r}")
        del self.clients[index]
        for other, position in self._position.items():
            if position > index:
                self._position[other] = position - 1
        count = len(self.clients)
        if count == 0:
            self._last_granted_index = -1
        elif self._last_granted_index > index:
            self._last_granted_index -= 1
        elif self._last_granted_index == index:
            # Priority passes to the removed client's circular successor.
            self._last_granted_index = (index - 1) % count

    def grant(
        self, active: set[Hashable], cycle: int = 0
    ) -> Optional[Hashable]:
        """Pick the next active client in circular order, or ``None``.

        ``active`` is the set of clients with a deliverable flit this cycle.
        Every member must have been registered (at construction or via
        :meth:`add_client`); an unknown client raises ``ValueError`` rather
        than being silently starved, which would mask wiring mistakes.
        ``cycle`` only timestamps trace events (frame grow/shrink).
        """
        if not active <= self._position.keys():
            unknown = sorted(repr(c) for c in active - self._position.keys())
            raise ValueError(
                f"unregistered client(s) in active set: {', '.join(unknown)}"
            )
        tracer = self._tracer
        if tracer.enabled:
            frame = len(active)
            if frame != self._frame_size:
                tracer.bus_frame(cycle, self._track, self._frame_size, frame)
                self._frame_size = frame
        self._active_hist.add(len(active))
        if not active:
            self._idle.increment()
            return None
        count = len(self.clients)
        for offset in range(1, count + 1):
            index = (self._last_granted_index + offset) % count
            client = self.clients[index]
            if client in active:
                self._last_granted_index = index
                self._grants.increment()
                return client
        raise AssertionError("unreachable: active is a subset of clients")

    def account_idle(self, cycles: int) -> None:
        """Bulk-record ``cycles`` idle cycles (no active clients).

        Used by the activity-tracked kernel to replay skipped bus-idle
        windows; equivalent to ``cycles`` calls to ``grant(set())``.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        if cycles:
            self._active_hist.add_many(0.0, cycles)
            self._idle.increment(cycles)

    @property
    def utilization_samples(self) -> tuple[int, int]:
        """(granted cycles, idle cycles) for bandwidth-efficiency checks."""
        return self._grants.value, self._idle.value

"""The communication pillar: a dTDMA bus spanning all device layers.

One :class:`PillarBus` connects the ``VERTICAL`` ports of the routers at a
fixed (x, y) location on every layer.  Each cycle the arbiter grants the
bus to at most one (layer, virtual-channel) client whose head flit can be
delivered; the flit crosses to its destination layer in a single hop (the
tens-of-microns inter-wafer distance makes vertical propagation sub-cycle,
so transfer takes one bus cycle regardless of how many layers are crossed).

Wormhole integrity across the bus is preserved by bus-level virtual-channel
allocation: a transmitting layer acquires the destination layer's input VC
at the head flit and holds it until the tail flit, so flits of different
packets never interleave within a receiving VC.
"""

from __future__ import annotations

import functools
from typing import Optional, TYPE_CHECKING

from repro.sim.engine import ClockedComponent, Engine
from repro.sim.stats import StatsRegistry
from repro.sim.trace import NULL_TRACER, Tracer
from repro.noc.flit import Flit
from repro.noc.link import CreditPipeline
from repro.noc.router import Router, InputPort
from repro.noc.routing import Port
from repro.dtdma.arbiter import DynamicTDMAArbiter
from repro.dtdma.transceiver import Transceiver

if TYPE_CHECKING:
    from repro.faults.state import FaultState

# A bus client is one (layer, vc) transmit queue.
Client = tuple[int, int]


class PillarBus(ClockedComponent):
    """dTDMA bus pillar connecting pillar routers across layers.

    Parameters
    ----------
    engine:
        Simulation engine.
    xy:
        In-plane coordinates of the pillar (same on every layer).
    routers:
        The pillar routers, one per layer, indexed by layer number.
    event_scheduling:
        ``True`` recreates the naive fabric's wiring (heap events and
        closures for rx delivery and credit returns) for the frozen
        reference network; ``False`` (default) uses the allocation-free
        direct-deposit/post paths, which are timing-equivalent.
    """

    def __init__(
        self,
        engine: Engine,
        xy: tuple[int, int],
        routers: dict[int, Router],
        stats: Optional[StatsRegistry] = None,
        event_scheduling: bool = False,
        tracer: Optional[Tracer] = None,
    ):
        self.engine = engine
        self.event_scheduling = event_scheduling
        self.xy = xy
        self.layers = sorted(routers)
        self.stats = stats or StatsRegistry(f"pillar{xy}")
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._track = self._tracer.track(f"pillar.{xy[0]}.{xy[1]}")
        if len(self.layers) < 2:
            raise ValueError("a pillar must span at least two layers")
        num_vcs = routers[self.layers[0]].num_vcs
        vc_depth = routers[self.layers[0]].vc_depth
        self.num_vcs = num_vcs

        self.transceivers: dict[int, Transceiver] = {}
        self._rx_ports: dict[int, InputPort] = {}
        self._rx_credits: dict[int, list[int]] = {}
        # Bus-level VC allocation: (dest_layer, vc) -> owning (src_layer, vc)
        self._vc_owner: dict[Client, Optional[Client]] = {}

        for layer, router in routers.items():
            transceiver = Transceiver(layer, num_vcs, vc_depth)
            transceiver.wake = self.wake
            self.transceivers[layer] = transceiver

            # Router VERTICAL output feeds the transceiver's TX queue.
            output_port = router.add_output_port(
                Port.VERTICAL,
                downstream_depth=vc_depth,
                deliver=transceiver.accept,
            )
            if event_scheduling:
                transceiver.credit_return = (
                    lambda vc, op=output_port: engine.schedule(
                        1, lambda: op.return_credit(vc)
                    )
                )
            else:
                transceiver.credit_return = CreditPipeline(
                    engine, output_port.return_credit
                )

            # Bus receive side is the router's VERTICAL input port.
            rx_port = router.add_input_port(Port.VERTICAL)
            self._rx_ports[layer] = rx_port
            self._rx_credits[layer] = [vc_depth] * num_vcs
            if event_scheduling:
                rx_port.credit_return = (
                    lambda vc, lay=layer: engine.schedule(
                        1, lambda: self._return_rx_credit(lay, vc)
                    )
                )
            else:
                rx_port.credit_return = CreditPipeline(
                    engine, functools.partial(self._return_rx_credit, layer)
                )
            for vc in range(num_vcs):
                self._vc_owner[(layer, vc)] = None

        clients: list[Client] = [
            (layer, vc) for layer in self.layers for vc in range(num_vcs)
        ]
        self.arbiter = DynamicTDMAArbiter(
            clients, stats=self.stats, tracer=self._tracer, track=self._track
        )
        self._granted: Optional[Client] = None
        # Pillar/TSV fault state: a failing bus first *drains* — only
        # packets already mid-transfer keep their slots, preserving
        # wormhole integrity — then dies: queued/arriving traffic is
        # dropped with loss accounting and the arbiter frame shrinks to
        # zero (slot reclamation).
        self._dead = False
        self._draining = False
        self._fault_state: Optional["FaultState"] = None
        scope = self.stats.scope("bus")
        self._busy = scope.counter("busy_cycles")
        self._cycles = scope.counter("total_cycles")
        self._transfers = scope.counter("flit_transfers")
        self._queue_hist = scope.histogram("tx_occupancy", 1.0, 64)
        # First cycle whose per-cycle accounting has not been recorded yet.
        # The bus records statistics every cycle under the naive kernel;
        # under activity tracking the idle cycles it was skipped for are
        # replayed in bulk (they are all zeros) on wake-up or flush.
        self._next_unaccounted = engine.cycle

    # -- activity tracking ---------------------------------------------------

    def is_idle(self) -> bool:
        """Idle iff no transceiver holds a flit (nothing to arbitrate)."""
        return all(t.occupancy == 0 for t in self.transceivers.values())

    def _account_idle(self, cycles: int) -> None:
        """Replay ``cycles`` skipped idle cycles of per-cycle statistics."""
        self._cycles.increment(cycles)
        self._queue_hist.add_many(0.0, cycles)
        self.arbiter.account_idle(cycles)

    def flush_idle_stats(self, cycle: int) -> None:
        gap = cycle - self._next_unaccounted
        if gap > 0:
            self._account_idle(gap)
            self._next_unaccounted = cycle

    # -- credit bookkeeping -----------------------------------------------

    def _return_rx_credit(self, layer: int, vc: int) -> None:
        self._rx_credits[layer][vc] += 1

    # -- pillar faults ------------------------------------------------------

    @property
    def dead(self) -> bool:
        return self._dead

    @property
    def draining(self) -> bool:
        return self._draining

    def fail(self, cycle: int, state: "FaultState") -> None:
        """Begin pillar death: drain in-progress packets, then go dark."""
        if self._dead or self._draining:
            return
        self._fault_state = state
        self._draining = True
        self.wake()
        if all(owner is None for owner in self._vc_owner.values()):
            self._complete_death(cycle)

    def heal(self, cycle: int) -> None:
        """Transient-fault recovery: the bus resumes with a fresh frame."""
        if self._draining:
            # Heal raced the drain; the bus never fully died.
            self._draining = False
            self.wake()
            return
        if not self._dead:
            return
        self._dead = False
        for transceiver in self.transceivers.values():
            transceiver.dead = False
            transceiver.on_drop = None
        for layer in self.layers:
            for vc in range(self.num_vcs):
                self.arbiter.add_client((layer, vc))
        self.wake()

    def _drop_flit(self, flit: Flit) -> None:
        state = self._fault_state
        state.flit_dropped()
        if flit.is_tail:
            state.packet_lost(flit.packet)

    def _blackhole(self, transceiver: Transceiver, flit: Flit, vc: int) -> None:
        # The router upstream consumed a credit to send this flit;
        # return it so the mesh keeps draining toward the dead pillar
        # instead of backpressuring into a secondary deadlock.
        transceiver.credit_return(vc)
        self._drop_flit(flit)

    def _complete_death(self, cycle: int) -> None:
        """Purge queued traffic, reclaim every slot, start blackholing."""
        for transceiver in self.transceivers.values():
            for vc in range(self.num_vcs):
                queue = transceiver.queues[vc]
                while queue:
                    # pop() returns the tx credit to the router's
                    # VERTICAL output port, freeing its buffers.
                    self._drop_flit(transceiver.pop(vc))
            transceiver.dead = True
            transceiver.on_drop = functools.partial(
                self._blackhole, transceiver
            )
        for client in list(self.arbiter.clients):
            self.arbiter.remove_client(client)
        self._granted = None
        self._draining = False
        self._dead = True

    # -- per-cycle operation -----------------------------------------------

    def _deliverable(self, client: Client) -> bool:
        """Can this (layer, vc) transmit its head flit right now?"""
        layer, vc = client
        flit = self.transceivers[layer].head(vc)
        if flit is None:
            return False
        dest_layer = flit.packet.dest.z
        if dest_layer == layer:
            raise RuntimeError(
                f"flit at pillar {self.xy} layer {layer} targets its own layer"
            )
        if dest_layer not in self._rx_ports:
            raise RuntimeError(
                f"pillar {self.xy} does not reach layer {dest_layer}"
            )
        owner = self._vc_owner[(dest_layer, vc)]
        if flit.is_head:
            if owner is not None and owner != client:
                return False
        else:
            if owner != client:
                return False
        return self._rx_credits[dest_layer][vc] > 0

    def evaluate(self, cycle: int) -> None:
        gap = cycle - self._next_unaccounted
        if gap > 0:
            self._account_idle(gap)
        self._next_unaccounted = cycle + 1
        self._cycles.increment()
        active = {
            client
            for client in self.arbiter.clients
            if self._deliverable(client)
        }
        if self._draining:
            # Drain mode: only clients mid-packet (holding a bus-level
            # VC) keep transmitting; no new packet may start.
            active &= {
                owner
                for owner in self._vc_owner.values()
                if owner is not None
            }
        self._queue_hist.add(
            sum(t.occupancy for t in self.transceivers.values())
        )
        self._granted = self.arbiter.grant(active, cycle)

    def advance(self, cycle: int) -> None:
        if self._granted is None:
            if self._draining and all(
                owner is None for owner in self._vc_owner.values()
            ):
                self._complete_death(cycle)
            return
        layer, vc = self._granted
        flit = self.transceivers[layer].pop(vc)
        dest_layer = flit.packet.dest.z
        tracer = self._tracer
        if tracer.enabled and flit.is_head:
            tracer.bus_grant(
                cycle,
                self._track,
                flit.packet.packet_id,
                layer,
                dest_layer,
                vc,
            )
        self._rx_credits[dest_layer][vc] -= 1
        if flit.is_head:
            self._vc_owner[(dest_layer, vc)] = (layer, vc)
        if flit.is_tail:
            self._vc_owner[(dest_layer, vc)] = None
        rx_port = self._rx_ports[dest_layer]
        if self.event_scheduling:
            self.engine.schedule(1, lambda f=flit, v=vc: rx_port.accept(f, v))
        else:
            # Direct deposit during advance: the receiving router first
            # arbitrates over the flit next cycle either way, and the rx
            # credit bound rules out buffer overflow.
            rx_port.accept(flit, vc)
        self._busy.increment()
        self._transfers.increment()
        self._granted = None
        if self._draining and all(
            owner is None for owner in self._vc_owner.values()
        ):
            self._complete_death(cycle)

    # -- reporting ----------------------------------------------------------

    @property
    def transfers(self) -> int:
        """Flits carried so far (liveness-watchdog progress signal)."""
        return self._transfers.value

    @property
    def utilization(self) -> float:
        """Fraction of cycles the bus carried a flit."""
        total = self._cycles.value
        return self._busy.value / total if total else 0.0

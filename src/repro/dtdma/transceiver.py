"""dTDMA bus transceiver: the per-layer interface between router and bus.

Each pillar router owns one transceiver (the Rx/Tx module of the paper's
Figure 5).  Its transmit side is a small per-VC FIFO that the router's
``VERTICAL`` output port treats as an ordinary downstream buffer; its
receive side is simply the router's ``VERTICAL`` input port, which the bus
delivers into directly.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.noc.flit import Flit


class Transceiver:
    """Transmit-side buffering for one layer's attachment to a pillar.

    The router's ``VERTICAL`` output port delivers into :meth:`accept`;
    the bus pops flits via :meth:`pop` when the arbiter grants this layer a
    slot.  ``credit_return`` is wired back to that output port so the
    router sees freed slots.
    """

    def __init__(self, layer: int, num_vcs: int, depth: int):
        self.layer = layer
        self.num_vcs = num_vcs
        self.depth = depth
        self.queues: list[deque[Flit]] = [deque() for __ in range(num_vcs)]
        self.credit_return: Optional[Callable[[int], None]] = None
        # Wired to the owning bus's wake() so an enqueue re-activates an
        # idle bus in the activity-tracked kernel.
        self.wake: Optional[Callable[[], None]] = None
        # Pillar-fault blackhole: a dead transceiver discards arriving
        # flits via the bus's drop hook (credits still return so the
        # mesh drains) instead of queueing them.
        self.dead = False
        self.on_drop: Optional[Callable[[Flit, int], None]] = None

    def accept(self, flit: Flit, vc: int) -> None:
        if self.dead:
            if self.on_drop is not None:
                self.on_drop(flit, vc)
            return
        queue = self.queues[vc]
        if len(queue) >= self.depth:
            raise RuntimeError(
                f"transceiver overflow at layer {self.layer} vc={vc}"
            )
        queue.append(flit)
        if self.wake is not None:
            self.wake()

    def head(self, vc: int) -> Optional[Flit]:
        queue = self.queues[vc]
        return queue[0] if queue else None

    def pop(self, vc: int) -> Flit:
        flit = self.queues[vc].popleft()
        if self.credit_return is not None:
            self.credit_return(vc)
        return flit

    @property
    def occupancy(self) -> int:
        return sum(len(queue) for queue in self.queues)

"""Dynamic-TDMA vertical bus ("communication pillar") substrate.

The paper's key interconnect proposal: instead of extending the mesh into
the third dimension with 7-port routers, vertically adjacent routers at a
pillar location share a dynamic time-division-multiple-access bus spanning
all device layers.  A central arbiter grows and shrinks the slot schedule
to match the set of active transmitters, so the bus approaches 100%
bandwidth efficiency and gives single-hop communication between any two
layers.
"""

from repro.dtdma.arbiter import DynamicTDMAArbiter, control_wire_count
from repro.dtdma.transceiver import Transceiver
from repro.dtdma.bus import PillarBus

__all__ = [
    "DynamicTDMAArbiter",
    "control_wire_count",
    "Transceiver",
    "PillarBus",
]

"""Energy reports: per-run breakdowns and scheme comparisons."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.power.energy import EnergyBreakdown, EnergyModel, account_run

if TYPE_CHECKING:
    from repro.core.system import NetworkInMemory, RunStats


def energy_report(
    system: "NetworkInMemory",
    stats: "RunStats",
    model: Optional[EnergyModel] = None,
) -> str:
    """Human-readable energy breakdown for one run."""
    breakdown = account_run(system, stats, model)
    total = breakdown.total_j

    def row(label: str, joules: float) -> str:
        share = joules / total * 100 if total else 0.0
        return f"  {label:22s} {joules * 1e6:10.2f} uJ  ({share:5.1f}%)"

    lines = [
        f"Energy breakdown — {stats.scheme.value}:",
        row("network (flit-hops)", breakdown.network_j),
        row("vertical buses", breakdown.bus_j),
        row("tag probes", breakdown.tag_j),
        row("bank accesses", breakdown.bank_j),
        row("off-chip DRAM", breakdown.dram_j),
        f"  {'total':22s} {total * 1e6:10.2f} uJ",
        f"  {'of which migration':22s} "
        f"{breakdown.migration_j * 1e6:10.2f} uJ",
    ]
    return "\n".join(lines)


def compare_energy(
    runs: dict[str, tuple["NetworkInMemory", "RunStats"]],
    model: Optional[EnergyModel] = None,
) -> dict[str, EnergyBreakdown]:
    """Energy breakdowns, normalized-comparable, for several runs.

    ``runs`` maps labels to (system, stats) pairs; energies are normalized
    per L2 access so runs of different lengths compare fairly.
    """
    breakdowns: dict[str, EnergyBreakdown] = {}
    for label, (system, stats) in runs.items():
        raw = account_run(system, stats, model)
        accesses = max(1, stats.l2_accesses)
        breakdowns[label] = raw.scaled(1.0 / accesses)
    return breakdowns

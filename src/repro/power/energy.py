"""Orion-style interconnect and Cacti-anchored cache energy model.

Per-event energies are derived from the synthesized component powers of
Table 1 and the Cacti array model:

* a **flit-hop** costs one router traversal plus one inter-router link
  traversal.  The 5-port router burns 119.55 mW; at ~3 GHz and a few
  flits per cycle of throughput this is on the order of tens of
  picojoules per flit, plus the ~1.5 mm link at ~0.2 pJ/bit/mm;
* a **bus transfer** costs the transceiver pair plus the vertical via
  run — far less than a horizontal hop, which is the energy side of the
  paper's 3D argument;
* **tag probes** and **bank accesses** use the Cacti dynamic energies.

Absolute joules are model estimates; the experiments compare schemes, so
the ratios are what matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.models.cacti import CactiModel, CacheArraySpec

if TYPE_CHECKING:
    from repro.core.system import NetworkInMemory, RunStats


@dataclass
class EnergyModel:
    """Per-event energies (joules)."""

    # Router traversal per flit: P_router / (f * flits-per-cycle capacity).
    router_flit_j: float = 30e-12
    # 1.5 mm inter-router wire at 128 bits, ~0.2 pJ/bit/mm.
    link_flit_j: float = 38e-12
    # Vertical bus: transceiver pair + 10 um via run per flit: tiny.
    bus_flit_j: float = 4e-12
    # Cacti-derived array energies.
    tag_probe_j: float = 0.12e-9     # 24 KB tag array read
    bank_access_j: float = 0.6e-9    # 64 KB data bank read/write
    dram_access_j: float = 18e-9     # off-chip access

    @classmethod
    def from_cacti(cls, bank_kb: int = 64, tag_kb: int = 24) -> "EnergyModel":
        """Derive the array energies from the Cacti model."""
        cacti = CactiModel()
        return cls(
            tag_probe_j=(
                cacti.dynamic_read_energy_nj(CacheArraySpec(tag_kb)) * 0.2e-9
            ),
            bank_access_j=(
                cacti.dynamic_read_energy_nj(CacheArraySpec(bank_kb)) * 1e-9
            ),
        )


@dataclass
class EnergyBreakdown:
    """Energy of one run, split by activity (joules)."""

    network_j: float = 0.0       # horizontal flit-hops
    bus_j: float = 0.0           # vertical bus transfers
    tag_j: float = 0.0           # tag-array probes
    bank_j: float = 0.0          # data-bank accesses
    migration_j: float = 0.0     # migration + swap transfers (subset of net)
    dram_j: float = 0.0          # off-chip accesses

    @property
    def total_j(self) -> float:
        return (
            self.network_j + self.bus_j + self.tag_j + self.bank_j
            + self.dram_j
        )

    @property
    def l2_dynamic_j(self) -> float:
        """On-chip L2 subsystem energy (the paper's power argument)."""
        return self.network_j + self.bus_j + self.tag_j + self.bank_j

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            network_j=self.network_j * factor,
            bus_j=self.bus_j * factor,
            tag_j=self.tag_j * factor,
            bank_j=self.bank_j * factor,
            migration_j=self.migration_j * factor,
            dram_j=self.dram_j * factor,
        )


def account_run(
    system: "NetworkInMemory",
    stats: "RunStats",
    model: EnergyModel | None = None,
) -> EnergyBreakdown:
    """Compute the energy breakdown of a completed run.

    Uses the run's traffic counters: flit-hops and bus flits from the
    latency model, tag-probe counts from the search statistics, bank
    accesses and DRAM accesses from the L2 counters, and migration
    transfers from the migration counter.
    """
    model = model or EnergyModel()
    snapshot = system.stats.snapshot()

    hits_step1 = snapshot.get("l2.hits_step1", 0)
    hits_step2 = snapshot.get("l2.hits_step2", 0)
    misses = stats.l2_misses
    # Tag probes: step-1 hits probe the step-1 set; step-2 hits and
    # misses probe every cluster.  Use CPU 0's plan as representative.
    plan = system.l2.search.plan(0)
    step1_size = len(plan.step1)
    total_clusters = len(system.topology.clusters)
    if system.setup.perfect_search:
        tag_probes = stats.l2_accesses
    else:
        tag_probes = (
            hits_step1 * step1_size
            + (hits_step2 + misses) * total_clusters
        )

    bank_accesses = stats.l2_hits + misses  # refill writes the bank too
    migration_transfers = 2 * stats.migrations  # line + swap victim

    data_flits = system.config.data_flits
    migration_flit_hops = 0.0
    if stats.migrations:
        # Approximate: each migration moves one cluster step (~4 hops).
        migration_flit_hops = migration_transfers * data_flits * 4.0

    return EnergyBreakdown(
        network_j=stats.flit_hops * (model.router_flit_j + model.link_flit_j),
        bus_j=stats.bus_flits * model.bus_flit_j,
        tag_j=tag_probes * model.tag_probe_j,
        bank_j=bank_accesses * model.bank_access_j,
        migration_j=(
            migration_flit_hops
            * (model.router_flit_j + model.link_flit_j)
        ),
        dram_j=misses * model.dram_access_j,
    )

"""Power and energy accounting for the Network-in-Memory system.

The paper argues its 3D design "helps reduce power consumption in L2 due
to a reduced number of data movements": fewer migrations mean fewer
line-sized packets crossing the network, and the bigger step-1 vicinity
means fewer multicast tag probes.  This package quantifies that claim
with an Orion-style interconnect energy model (per-flit router/link/bus
energies anchored to Table 1's synthesized power) and a Cacti-anchored
L2 array energy model, and turns a run's statistics into an energy
report.
"""

from repro.power.energy import EnergyModel, EnergyBreakdown
from repro.power.report import energy_report, compare_energy

__all__ = [
    "EnergyModel",
    "EnergyBreakdown",
    "energy_report",
    "compare_energy",
]

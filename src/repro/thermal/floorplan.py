"""Floorplan: per-cell power map of a placed chip.

One thermal cell per mesh node per layer.  The cell's power is the sum of
everything the node hosts: its router, its bank (with clock-gating), a CPU
core if one is placed there, and the dTDMA transceiver/arbiter share for
pillar nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.chip import ChipTopology
from repro.thermal.power import PowerModel


@dataclass
class Floorplan:
    """Power map of the chip: ``power[layer, y, x]`` in watts."""

    width: int
    height: int
    layers: int
    power: np.ndarray          # shape (layers, height, width)
    cpu_cells: list[tuple[int, int, int]]   # (layer, y, x) of each CPU

    @property
    def total_power(self) -> float:
        return float(self.power.sum())


def build_floorplan(
    topology: ChipTopology, power_model: Optional[PowerModel] = None
) -> Floorplan:
    """Compute the per-cell power map for a placed chip."""
    model = power_model or PowerModel()
    config = topology.config
    width, height = config.mesh_dims
    layers = config.num_layers
    power = np.zeros((layers, height, width))
    cpu_nodes = set(topology.cpu_positions.values())
    pillar_set = set(topology.pillar_xys)

    for z in range(layers):
        for y in range(height):
            for x in range(width):
                is_cpu = any(
                    c.x == x and c.y == y and c.z == z for c in cpu_nodes
                )
                has_pillar = (x, y) in pillar_set and layers > 1
                power[z, y, x] = model.node_power(is_cpu, has_pillar, layers)

    cpu_cells = [
        (coord.z, coord.y, coord.x)
        for coord in topology.cpu_positions.values()
    ]
    return Floorplan(
        width=width,
        height=height,
        layers=layers,
        power=power,
        cpu_cells=cpu_cells,
    )

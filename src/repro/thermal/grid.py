"""Steady-state 3D resistive-grid thermal solver.

The chip is a 3D grid of thermal cells.  Heat flows between lateral
neighbours within a layer (through silicon), between vertically adjacent
cells (through the thinned wafer and bond interface), and from the bottom
layer into the heat sink, which is held at ambient.  Conservation of
energy at each cell gives a sparse linear system

    sum_j G_ij (T_i - T_j) + G_sink,i (T_i - T_amb) = P_i

solved exactly with scipy's sparse LU.  This is the same steady-state
abstraction HS3d/HotSpot use, minus their multi-resolution package model.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import lil_matrix, csr_matrix
from scipy.sparse.linalg import spsolve

from repro.thermal.power import ThermalParams
from repro.thermal.floorplan import Floorplan


class ThermalGrid:
    """Solver for one floorplan under given thermal parameters."""

    def __init__(self, floorplan: Floorplan, params: ThermalParams):
        self.floorplan = floorplan
        self.params = params
        self._temperatures: np.ndarray | None = None

    def _index(self, z: int, y: int, x: int) -> int:
        fp = self.floorplan
        return (z * fp.height + y) * fp.width + x

    def solve(self) -> np.ndarray:
        """Solve for the temperature field; returns (layers, height, width)."""
        fp = self.floorplan
        params = self.params
        n = fp.layers * fp.height * fp.width
        conductance = lil_matrix((n, n))
        rhs = np.zeros(n)

        for z in range(fp.layers):
            for y in range(fp.height):
                for x in range(fp.width):
                    i = self._index(z, y, x)
                    rhs[i] += fp.power[z, y, x]
                    # Lateral coupling (east and north; symmetric fill).
                    for dx, dy in ((1, 0), (0, 1)):
                        nx, ny = x + dx, y + dy
                        if nx < fp.width and ny < fp.height:
                            j = self._index(z, ny, nx)
                            g = params.lateral(z)
                            conductance[i, i] += g
                            conductance[j, j] += g
                            conductance[i, j] -= g
                            conductance[j, i] -= g
                    # Vertical coupling to the layer above.
                    if z + 1 < fp.layers:
                        j = self._index(z + 1, y, x)
                        g = params.g_vertical
                        conductance[i, i] += g
                        conductance[j, j] += g
                        conductance[i, j] -= g
                        conductance[j, i] -= g
                    # Heat sink under layer 0.
                    if z == 0:
                        conductance[i, i] += params.g_sink
                        rhs[i] += params.g_sink * params.ambient_c

        temperatures = spsolve(csr_matrix(conductance), rhs)
        field = temperatures.reshape((fp.layers, fp.height, fp.width))
        self._temperatures = field
        return field

    @property
    def temperatures(self) -> np.ndarray:
        if self._temperatures is None:
            return self.solve()
        return self._temperatures

    # -- summary metrics (HS3d's outputs) -------------------------------------

    @property
    def peak(self) -> float:
        return float(self.temperatures.max())

    @property
    def average(self) -> float:
        return float(self.temperatures.mean())

    @property
    def minimum(self) -> float:
        return float(self.temperatures.min())

    def hotspots(self, threshold_c: float) -> list[tuple[int, int, int]]:
        """Cells exceeding ``threshold_c``, as (layer, y, x)."""
        field = self.temperatures
        cells = np.argwhere(field > threshold_c)
        return [tuple(int(v) for v in cell) for cell in cells]

"""HS3d-equivalent steady-state 3D thermal model.

The paper validates its CPU-placement methodology with HS3d [Link &
Vijaykrishnan], a steady-state thermal estimator producing peak, average
and minimum die temperatures plus a full thermal profile.  This package
implements the same abstraction: the chip is discretized into one thermal
cell per mesh node per layer; cells exchange heat laterally within a layer
and vertically between layers through a resistive network, and the bottom
layer conducts into the heat sink.  The resulting sparse linear system is
solved exactly with scipy.

Power inputs follow the paper: 8 W per CPU core (Niagara-derived), Cacti
bank power for the L2 (clock-gated when idle), and Table 1's synthesized
router power.
"""

from repro.thermal.power import PowerModel, ThermalParams
from repro.thermal.floorplan import Floorplan, build_floorplan
from repro.thermal.grid import ThermalGrid
from repro.thermal.hotspot import ThermalProfile, simulate_thermal

__all__ = [
    "PowerModel",
    "ThermalParams",
    "Floorplan",
    "build_floorplan",
    "ThermalGrid",
    "ThermalProfile",
    "simulate_thermal",
]

"""Thermal profiles for chip configurations (Table 3's rows).

`simulate_thermal` is the one-call front door: give it a placed chip
topology (or the placement ingredients) and it returns the HS3d-style
peak / average / minimum temperatures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.chip import ChipConfig, ChipTopology
from repro.core.placement import PlacementPolicy, build_topology
from repro.thermal.power import PowerModel, ThermalParams
from repro.thermal.floorplan import build_floorplan
from repro.thermal.grid import ThermalGrid


@dataclass
class ThermalProfile:
    """HS3d-style summary of one configuration."""

    label: str
    peak_c: float
    avg_c: float
    min_c: float

    def row(self) -> tuple[str, float, float, float]:
        return (self.label, self.peak_c, self.avg_c, self.min_c)

    def __str__(self) -> str:
        return (
            f"{self.label}: peak={self.peak_c:.2f}C "
            f"avg={self.avg_c:.2f}C min={self.min_c:.2f}C"
        )


def simulate_thermal(
    topology: Optional[ChipTopology] = None,
    *,
    config: Optional[ChipConfig] = None,
    placement: Optional[PlacementPolicy] = None,
    k: int = 1,
    label: str = "",
    power_model: Optional[PowerModel] = None,
    params: Optional[ThermalParams] = None,
) -> ThermalProfile:
    """Solve the steady-state thermal profile of a placed chip.

    Either pass a finished ``topology`` or a ``config`` (+ optional
    ``placement`` and Algorithm-1 offset ``k``) to place one here.
    """
    if topology is None:
        if config is None:
            raise ValueError("need a topology or a chip config")
        topology = build_topology(config, placement, k=k)
    floorplan = build_floorplan(topology, power_model)
    grid = ThermalGrid(floorplan, params or ThermalParams())
    grid.solve()
    return ThermalProfile(
        label=label or f"{topology.config.num_layers}-layer",
        peak_c=grid.peak,
        avg_c=grid.average,
        min_c=grid.minimum,
    )

"""Component power models and thermal network parameters.

Power numbers follow the paper's methodology: 8 W per CPU core
(approximated from the UltraSPARC T1's 79 W over 8 cores plus periphery),
Table 1's synthesized 5-port router (119.55 mW), and Cacti-derived bank
power with clock gating when idle.

The thermal network constants are calibrated so the paper's 2D
configuration (Table 3, row 1: 256 x 64 KB banks, 8 CPUs, maximal offset)
reproduces its reported peak/average/minimum of 111.05 / 53.96 / 46.77 C;
the 3D rows then follow from geometry alone — stacked layers share the
same heat-sink footprint, which is precisely why their average temperature
rises (e.g. all 2-layer rows average 63.94 C in the paper regardless of
CPU placement, because average temperature is set by total power over sink
conductance, not by placement).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PowerModel:
    """Per-component power draw in watts."""

    cpu_w: float = 8.0            # single-issue core (Niagara-derived)
    router_w: float = 0.11955     # Table 1, 5-port generic NoC router
    bank_active_w: float = 0.09   # 64KB bank, Cacti 3.2, while accessed
    bank_idle_w: float = 0.012    # clock-gated leakage
    bank_activity: float = 0.10   # long-run fraction of banks active
    dtdma_rx_tx_w: float = 97.39e-6   # Table 1, per client pair
    dtdma_arbiter_w: float = 204.98e-6  # Table 1, per bus

    def bank_w(self) -> float:
        """Average bank power under clock gating."""
        return (
            self.bank_activity * self.bank_active_w
            + (1.0 - self.bank_activity) * self.bank_idle_w
        )

    def node_power(self, is_cpu: bool, has_pillar: bool, num_layers: int) -> float:
        """Average power of one mesh node's contents."""
        power = self.router_w + self.bank_w()
        if is_cpu:
            power += self.cpu_w
        if has_pillar:
            power += self.dtdma_rx_tx_w
            power += self.dtdma_arbiter_w / max(1, num_layers)
        return power


@dataclass
class ThermalParams:
    """Resistive-network constants (calibrated; see module docstring).

    ``g_sink`` is the per-cell conductance from the bottom layer into the
    heat sink; ``g_lateral`` couples in-layer neighbours; ``g_vertical``
    couples vertically adjacent cells through the thinned wafer and bond.
    """

    ambient_c: float = 45.0
    g_sink: float = 0.0435        # W/K per bottom-layer cell
    g_lateral: float = 0.026      # W/K between neighbours, bulk layer 0
    # Stacked layers are thinned to tens of microns for wafer bonding, so
    # they spread heat laterally far worse than the bulk bottom layer —
    # the effect that makes hotspots on upper layers (and especially
    # stacked CPUs) so severe in 3D chips.
    g_lateral_thin: float = 0.009
    g_vertical: float = 0.36      # W/K between stacked cells (via + bond)

    def lateral(self, layer: int) -> float:
        """Lateral conductance on a given layer (bulk vs thinned)."""
        return self.g_lateral if layer == 0 else self.g_lateral_thin

"""Synthetic SPEC OMP workload generators.

The paper drives its simulator with nine SPEC OMP benchmarks under Simics
full-system simulation (Table 5).  Without Simics/Solaris/SPEC, we generate
synthetic per-CPU memory-reference traces whose *cache-relevant* behaviour
is calibrated to the paper's characterization: per-benchmark L2 transaction
volume (Table 5), the high L1 miss rates of mgrid/swim/wupwise vs the low
rates of art/galgel, OpenMP-style partitioned sharing of large arrays, and
streaming access with per-benchmark spatial locality.
"""

from repro.workloads.benchmarks import (
    BenchmarkProfile,
    BENCHMARKS,
    BENCHMARK_NAMES,
    get_benchmark,
)
from repro.workloads.generator import SyntheticWorkload

__all__ = [
    "BenchmarkProfile",
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "get_benchmark",
    "SyntheticWorkload",
]

"""Per-benchmark workload profiles calibrated to the paper's Table 5.

``l2_transactions_paper`` and ``fastforward_mcycles`` are the paper's
measured values (Table 5) for a 2-billion-cycle sample.  The remaining
fields are the synthetic-generator knobs chosen to reproduce each
benchmark's *qualitative* cache behaviour:

* mgrid, swim and wupwise are streaming, memory-bound stencil/array codes
  with high L1 miss rates (the paper attributes their large L2 counts to
  this) — high ``stream_fraction`` and few references per cache line.
* art and galgel have small hot working sets and low L1 miss rates.
* the rest sit in between.

``sharing`` controls the OpenMP scheduling character: each CPU grabs
chunks of the global shared array mostly from its preferred region
(static-schedule affinity), but with probability ``sharing`` from anywhere
(dynamic scheduling, loops partitioned differently).  Over time the same
lines are touched by different CPUs, which exercises the coherence
protocol, scatters data over the NUCA clusters, and makes migration churn
rather than trivially localize (the behaviour Fig 14 quantifies).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkProfile:
    """Knobs of one synthetic SPEC OMP benchmark."""

    name: str
    l2_transactions_paper: int     # Table 5, per 2B-cycle sample
    fastforward_mcycles: int       # Table 5
    mem_ratio: float               # memory references per instruction
    stream_fraction: float         # streaming (array-sweep) references
    hot_fraction: float            # hot-set references (L1-resident)
    refs_per_line: int             # refs per 64B line within a stream
    working_set_mb: float          # global shared-array size (all CPUs)
    hot_set_kb: int                # per-CPU hot set (fits in L1)
    sharing: float                 # prob. a chunk grab ignores affinity
    write_fraction: float          # stores among data references
    ifetch_fraction: float         # instruction fetches among references
    zipf_alpha: float = 0.5        # popularity skew of hot/cross refs

    def __post_init__(self) -> None:
        if not 0 < self.mem_ratio <= 1:
            raise ValueError(f"{self.name}: mem_ratio out of range")
        total = self.stream_fraction + self.hot_fraction
        if total > 1.0 + 1e-9:
            raise ValueError(f"{self.name}: reference mix exceeds 1")
        if self.refs_per_line < 1:
            raise ValueError(f"{self.name}: refs_per_line must be >= 1")

    @property
    def expected_l1_miss_rate(self) -> float:
        """First-order estimate: streams miss once per line."""
        return self.stream_fraction / self.refs_per_line

    @property
    def paper_intensity(self) -> float:
        """Paper-reported L2 transactions per cycle (8 CPUs)."""
        return self.l2_transactions_paper / 2_000_000_000


# Table 5 rows, in the paper's order.
BENCHMARKS: dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in [
        BenchmarkProfile(
            name="ammp",
            l2_transactions_paper=24_508_715,
            fastforward_mcycles=3_633,
            mem_ratio=0.32,
            stream_fraction=0.3,
            hot_fraction=0.64,
            refs_per_line=16,
            working_set_mb=1.75,
            hot_set_kb=20,
            sharing=0.8,
            write_fraction=0.18,
            ifetch_fraction=0.05,
        ),
        BenchmarkProfile(
            name="apsi",
            l2_transactions_paper=27_013_447,
            fastforward_mcycles=4_453,
            mem_ratio=0.33,
            stream_fraction=0.32,
            hot_fraction=0.62,
            refs_per_line=16,
            working_set_mb=2.0,
            hot_set_kb=20,
            sharing=0.85,
            write_fraction=0.2,
            ifetch_fraction=0.05,
        ),
        BenchmarkProfile(
            name="art",
            l2_transactions_paper=25_638_435,
            fastforward_mcycles=3_523,
            mem_ratio=0.35,
            stream_fraction=0.3,
            hot_fraction=0.66,
            refs_per_line=20,
            working_set_mb=1.5,
            hot_set_kb=16,
            sharing=0.8,
            write_fraction=0.12,
            ifetch_fraction=0.04,
        ),
        BenchmarkProfile(
            name="equake",
            l2_transactions_paper=27_502_906,
            fastforward_mcycles=21_538,
            mem_ratio=0.34,
            stream_fraction=0.33,
            hot_fraction=0.61,
            refs_per_line=16,
            working_set_mb=2.0,
            hot_set_kb=20,
            sharing=0.85,
            write_fraction=0.18,
            ifetch_fraction=0.05,
        ),
        BenchmarkProfile(
            name="fma3d",
            l2_transactions_paper=12_599_496,
            fastforward_mcycles=18_535,
            mem_ratio=0.30,
            stream_fraction=0.18,
            hot_fraction=0.79,
            refs_per_line=20,
            working_set_mb=1.25,
            hot_set_kb=16,
            sharing=0.8,
            write_fraction=0.1,
            ifetch_fraction=0.06,
        ),
        BenchmarkProfile(
            name="galgel",
            l2_transactions_paper=38_181_613,
            fastforward_mcycles=3_665,
            mem_ratio=0.36,
            stream_fraction=0.42,
            hot_fraction=0.52,
            refs_per_line=14,
            working_set_mb=2.5,
            hot_set_kb=20,
            sharing=0.9,
            write_fraction=0.16,
            ifetch_fraction=0.04,
        ),
        BenchmarkProfile(
            name="mgrid",
            l2_transactions_paper=204_815_737,
            fastforward_mcycles=3_533,
            mem_ratio=0.40,
            stream_fraction=0.8,
            hot_fraction=0.14,
            refs_per_line=8,
            working_set_mb=2.5,
            hot_set_kb=24,
            sharing=0.9,
            write_fraction=0.28,
            ifetch_fraction=0.02,
        ),
        BenchmarkProfile(
            name="swim",
            l2_transactions_paper=164_762_040,
            fastforward_mcycles=4_306,
            mem_ratio=0.38,
            stream_fraction=0.78,
            hot_fraction=0.16,
            refs_per_line=9,
            working_set_mb=2.2,
            hot_set_kb=24,
            sharing=0.9,
            write_fraction=0.3,
            ifetch_fraction=0.02,
        ),
        BenchmarkProfile(
            name="wupwise",
            l2_transactions_paper=141_499_738,
            fastforward_mcycles=18_777,
            mem_ratio=0.36,
            stream_fraction=0.75,
            hot_fraction=0.19,
            refs_per_line=10,
            working_set_mb=2.2,
            hot_set_kb=24,
            sharing=0.9,
            write_fraction=0.26,
            ifetch_fraction=0.03,
        ),
    ]
}

BENCHMARK_NAMES: tuple[str, ...] = tuple(BENCHMARKS)


def get_benchmark(name: str) -> BenchmarkProfile:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        ) from None

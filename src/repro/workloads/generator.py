"""Synthetic memory-reference trace generation.

Generates per-CPU traces with the structure of an OpenMP scientific code
(the paper's SPEC OMP suite):

* **chunked streaming** — the dominant pattern.  All CPUs stream through a
  *global shared array* in contiguous chunks (an OpenMP parallel loop:
  each thread grabs a chunk, sweeps it, grabs another).  With probability
  ``affinity`` a CPU picks its next chunk from its own preferred region of
  the array (static scheduling affinity); otherwise anywhere (dynamic
  scheduling, re-partitioned loops).  Each 64 B line receives
  ``refs_per_line`` references per sweep — the knob that sets the L1 miss
  rate — and over time the *same lines are touched by different CPUs*,
  which is what makes naive migration churn (paper Fig 14) instead of
  trivially localizing everything.
* **hot-set** references hit a small per-CPU region that stays L1-resident
  (loop scalars, stack).
* **residual** references scatter uniformly over the shared array
  (indirect/irregular accesses).
* **instruction fetches** walk a small per-CPU code loop.

All sampling is vectorized with numpy and fully deterministic given the
seed.  Events come out as ``(gap, op, address)`` tuples (see
:mod:`repro.cpu.trace`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.rng import make_rng
from repro.cpu.trace import OP_READ, OP_WRITE, OP_IFETCH, TraceEvent
from repro.workloads.benchmarks import BenchmarkProfile, get_benchmark

# Disjoint address regions (byte addresses).
_SHARED_BASE = 0x1000_0000
_HOT_BASE = 0x8000_0000
_CODE_BASE = 0xC000_0000
_CODE_BYTES = 24 * 1024
_LINE = 64


class SyntheticWorkload:
    """Trace factory for one benchmark profile on ``num_cpus`` CPUs."""

    def __init__(
        self,
        benchmark: str | BenchmarkProfile,
        num_cpus: int = 8,
        refs_per_cpu: int = 150_000,
        seed: int = 2006,
        chunk_kb: int = 8,
    ):
        self.profile = (
            benchmark
            if isinstance(benchmark, BenchmarkProfile)
            else get_benchmark(benchmark)
        )
        if num_cpus < 1:
            raise ValueError("need at least one CPU")
        if refs_per_cpu < 1:
            raise ValueError("need at least one reference per CPU")
        if chunk_kb < 1:
            raise ValueError("chunk size must be at least 1 KB")
        self.num_cpus = num_cpus
        self.refs_per_cpu = refs_per_cpu
        self.seed = seed
        self.chunk_bytes = chunk_kb * 1024
        self.shared_bytes = int(self.profile.working_set_mb * 1024 * 1024)
        if self.shared_bytes < self.chunk_bytes * num_cpus:
            raise ValueError("shared array smaller than one chunk per CPU")
        self._hot_lines = max(1, self.profile.hot_set_kb * 1024 // _LINE)

    # -- trace construction ------------------------------------------------------

    def cpu_trace(self, cpu_id: int) -> list[TraceEvent]:
        """Generate the full reference trace for one CPU."""
        if not 0 <= cpu_id < self.num_cpus:
            raise ValueError(f"cpu {cpu_id} out of range")
        profile = self.profile
        n = self.refs_per_cpu
        rng = make_rng(self.seed, f"{profile.name}.cpu{cpu_id}")

        # Instruction gaps: geometric around the memory-instruction density.
        gap_mean = (1.0 - profile.mem_ratio) / profile.mem_ratio
        gaps = rng.geometric(1.0 / (gap_mean + 1.0), size=n) - 1

        # Reference categories.
        draw = rng.random(n)
        is_ifetch = draw < profile.ifetch_fraction
        data_draw = rng.random(n)
        stream_cut = profile.stream_fraction
        hot_cut = stream_cut + profile.hot_fraction
        is_stream = (~is_ifetch) & (data_draw < stream_cut)
        is_hot = (~is_ifetch) & (data_draw >= stream_cut) & (data_draw < hot_cut)
        is_residual = (~is_ifetch) & (data_draw >= hot_cut)

        addresses = self._stream_addresses(rng, n, is_stream, cpu_id)

        # Hot set: Zipf-popular lines in a small private region.
        hot_line = self._zipf_lines(rng, n, self._hot_lines, profile.zipf_alpha)
        hot_addr = _HOT_BASE + (cpu_id << 24) + hot_line * _LINE
        addresses = np.where(is_hot, hot_addr, addresses)

        # Residual: popularity-skewed lines over the shared hot structures
        # (lookup tables, boundary data).  The pool is capped so these are
        # genuinely reused lines, not a cold-miss generator.
        residual_pool = min(self.shared_bytes, 2 * 1024 * 1024)
        residual_line = self._zipf_lines(
            rng, n, residual_pool // _LINE, profile.zipf_alpha
        )
        addresses = np.where(
            is_residual, _SHARED_BASE + residual_line * _LINE, addresses
        )

        # Instruction fetches: sequential walk of a small loop body.
        ifetch_pos = np.cumsum(np.where(is_ifetch, 4, 0))
        ifetch_addr = _CODE_BASE + (cpu_id << 24) + (ifetch_pos % _CODE_BYTES)
        addresses = np.where(is_ifetch, ifetch_addr, addresses)

        # Sub-line offsets for data references (8-byte words).
        word = rng.integers(0, _LINE // 8, size=n) * 8
        addresses = np.where(
            is_ifetch, addresses, addresses // _LINE * _LINE + word
        )

        # Operations: writes come from the stream (output arrays) and the
        # hot set (scalars); the residual shared structures are
        # overwhelmingly read-only (lookup tables, boundary reads).
        ops = np.full(n, OP_READ, dtype=np.int64)
        write_draw = rng.random(n)
        write_prob = np.where(is_residual, 0.02, profile.write_fraction)
        is_write = (~is_ifetch) & (write_draw < write_prob)
        ops[is_write] = OP_WRITE
        ops[is_ifetch] = OP_IFETCH

        return list(zip(gaps.tolist(), ops.tolist(), addresses.tolist()))

    def traces(self) -> list[list[TraceEvent]]:
        """Traces for all CPUs (the input to ``NetworkInMemory.run_trace``)."""
        return [self.cpu_trace(cpu) for cpu in range(self.num_cpus)]

    # -- streaming ------------------------------------------------------------------

    def _stream_addresses(
        self,
        rng: np.random.Generator,
        n: int,
        is_stream: np.ndarray,
        cpu_id: int,
    ) -> np.ndarray:
        """Chunked streaming over the global shared array.

        The CPU's stream position advances ``line/refs_per_line`` bytes per
        stream reference; every time it crosses a chunk boundary the CPU
        "grabs" a new chunk — from its preferred region with probability
        ``affinity`` (modelled via ``1 - sharing``), anywhere otherwise.
        """
        profile = self.profile
        step = max(1, _LINE // profile.refs_per_line)
        position = np.cumsum(np.where(is_stream, step, 0))
        chunk_index = position // self.chunk_bytes
        within = position % self.chunk_bytes
        num_chunks = int(chunk_index[-1]) + 1 if n else 1

        total_chunks = self.shared_bytes // self.chunk_bytes
        chunks_per_cpu = total_chunks // self.num_cpus
        preferred_base = cpu_id * chunks_per_cpu

        anywhere = rng.random(num_chunks) < profile.sharing
        preferred = preferred_base + rng.integers(
            0, max(1, chunks_per_cpu), size=num_chunks
        )
        random_chunk = rng.integers(0, total_chunks, size=num_chunks)
        chosen = np.where(anywhere, random_chunk, preferred)

        base = _SHARED_BASE + chosen[chunk_index] * self.chunk_bytes
        return base + within

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _zipf_lines(
        rng: np.random.Generator, n: int, num_lines: int, alpha: float
    ) -> np.ndarray:
        """Popularity-skewed line indices in ``[0, num_lines)``.

        A bounded power-law via inverse transform: low indices are
        proportionally hotter, with the skew controlled by ``alpha``, but
        no single line dominates the way an unbounded Zipf head does —
        real hot *lines* are L1-resident, so the L2 sees the body of the
        popularity distribution, not its head.
        """
        if num_lines <= 1:
            return np.zeros(n, dtype=np.int64)
        shape = 1.0 + 4.0 * alpha
        uniform = rng.random(n)
        return (num_lines * uniform**shape).astype(np.int64)

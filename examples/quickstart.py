"""Quickstart: simulate the 3D Network-in-Memory CMP on one workload.

Builds the paper's default system (Table 4: 8 CPUs, 16 MB L2 as 16
clusters of 16 x 64 KB banks, 2 layers, 8 dTDMA pillars), runs the
synthetic `swim` workload through it, and prints the headline statistics.

Run:  python examples/quickstart.py
"""

from repro import NetworkInMemory, SystemConfig, Scheme
from repro.workloads import SyntheticWorkload


def main() -> None:
    config = SystemConfig(scheme=Scheme.CMP_DNUCA_3D)
    system = NetworkInMemory(config)

    print("=== Chip ===")
    print(system.topology.describe())

    workload = SyntheticWorkload("swim", refs_per_cpu=30_000)
    print("\nRunning the synthetic 'swim' workload on 8 cores ...")
    stats = system.run_trace(workload.traces(), warmup_events=100_000)

    print("\n=== Results ===")
    print(f"L2 accesses:          {stats.l2_accesses:,}")
    print(f"L2 hit rate:          {stats.l2_hit_rate:.1%}")
    print(f"Avg L2 hit latency:   {stats.avg_l2_hit_latency:.1f} cycles")
    print(f"Avg L2 miss latency:  {stats.avg_l2_miss_latency:.1f} cycles")
    print(f"Block migrations:     {stats.migrations:,}")
    print(f"L1 miss rate:         {stats.l1_miss_rate:.1%}")
    print(f"Aggregate IPC:        {stats.ipc:.3f}")
    print(f"Per-CPU IPC:          "
          + ", ".join(f"{ipc:.2f}" for ipc in stats.per_cpu_ipc))
    print(f"Network flit-hops:    {stats.flit_hops:,.0f}")
    print(f"Vertical bus flits:   {stats.bus_flits:,.0f}")


if __name__ == "__main__":
    main()

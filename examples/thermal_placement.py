"""Thermal-aware CPU placement exploration (the paper's Section 3.3).

Solves the steady-state thermal profile of several CPU placements on the
same 2-layer chip — maximal 3D offsetting, Algorithm 1 with k=1 and k=2,
and naive vertical stacking — and renders an ASCII heat map of the
hottest layer for the best and worst placements.

Run:  python examples/thermal_placement.py
"""

import numpy as np

from repro.core.chip import ChipConfig
from repro.core.placement import PlacementPolicy, build_topology
from repro.thermal import build_floorplan, ThermalGrid
from repro.thermal.power import ThermalParams


def heat_map(field: np.ndarray, layer: int) -> str:
    """Render one layer's temperatures as an ASCII intensity map."""
    ramp = " .:-=+*#%@"
    sheet = field[layer]
    low, high = field.min(), field.max()
    rows = []
    for row in sheet[::-1]:  # +y up
        chars = [
            ramp[min(int((t - low) / (high - low + 1e-9) * len(ramp)),
                     len(ramp) - 1)]
            for t in row
        ]
        rows.append("".join(chars))
    return "\n".join(rows)


def main() -> None:
    cases = [
        ("maximal 3D offset (Fig 9)",
         ChipConfig(num_layers=2, num_pillars=8),
         PlacementPolicy.MAXIMAL_OFFSET, 1),
        ("Algorithm 1, k=2",
         ChipConfig(num_layers=2, num_pillars=2),
         PlacementPolicy.ALGORITHM1, 2),
        ("Algorithm 1, k=1",
         ChipConfig(num_layers=2, num_pillars=2),
         PlacementPolicy.ALGORITHM1, 1),
        ("CPU stacking (worst case)",
         ChipConfig(num_layers=2, num_pillars=8),
         PlacementPolicy.STACKED, 1),
    ]
    solved = []
    for label, config, placement, k in cases:
        topology = build_topology(config, placement, k=k)
        grid = ThermalGrid(build_floorplan(topology), ThermalParams())
        field = grid.solve()
        solved.append((label, grid, field))
        print(
            f"{label:28s} peak={grid.peak:7.2f}C  "
            f"avg={grid.average:6.2f}C  min={grid.minimum:6.2f}C"
        )

    best = min(solved, key=lambda item: item[1].peak)
    worst = max(solved, key=lambda item: item[1].peak)
    for label, grid, field in (best, worst):
        hot_layer = int(
            np.unravel_index(field.argmax(), field.shape)[0]
        )
        print(f"\n{label} — hottest layer {hot_layer} "
              f"(peak {grid.peak:.1f}C):")
        print(heat_map(field, hot_layer))
    print(
        "\nHotspots: stacking CPUs aligns the 8 W cores vertically and "
        "spikes the peak; offsetting in all three dimensions (the paper's "
        "placement) keeps the same average with a far lower peak."
    )


if __name__ == "__main__":
    main()

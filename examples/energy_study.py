"""Energy study: the power side of the 3D argument.

The paper: migrating less and searching a bigger step-1 vicinity cuts the
number of data movements, and therefore L2 power.  This example runs the
2D and 3D schemes on the same workload and prints per-access energy
breakdowns side by side.

Run:  python examples/energy_study.py [benchmark]
"""

import sys

from repro import NetworkInMemory, SystemConfig, Scheme
from repro.power import compare_energy, energy_report
from repro.workloads import SyntheticWorkload, BENCHMARK_NAMES


def main(benchmark: str = "swim") -> None:
    if benchmark not in BENCHMARK_NAMES:
        raise SystemExit(f"choose a benchmark from {BENCHMARK_NAMES}")
    runs = {}
    for scheme in (
        Scheme.CMP_DNUCA_2D,
        Scheme.CMP_SNUCA_3D,
        Scheme.CMP_DNUCA_3D,
    ):
        system = NetworkInMemory(SystemConfig(scheme=scheme))
        workload = SyntheticWorkload(benchmark, refs_per_cpu=25_000)
        stats = system.run_trace(workload.traces(), warmup_events=100_000)
        runs[scheme.value] = (system, stats)
        print(energy_report(system, stats))
        print()

    per_access = compare_energy(runs)
    print("Per-L2-access on-chip energy (network + bus + tag + bank):")
    for label, breakdown in per_access.items():
        print(f"  {label:15s} {breakdown.l2_dynamic_j * 1e9:8.3f} nJ/access")
    base = per_access[Scheme.CMP_DNUCA_2D.value].l2_dynamic_j
    best = per_access[Scheme.CMP_DNUCA_3D.value].l2_dynamic_j
    print(
        f"\nCMP-DNUCA-3D uses {(1 - best / base) * 100:.1f}% less on-chip "
        "L2 energy per access than CMP-DNUCA-2D on this workload."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "swim")

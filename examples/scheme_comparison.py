"""Compare the paper's four schemes on one benchmark.

A miniature of Figures 13-15: runs CMP-DNUCA (the Beckmann & Wood
baseline with perfect search), our 2D scheme, the static 3D scheme, and
the full 3D design on a chosen benchmark, and reports hit latency, IPC
and migration traffic side by side.

Run:  python examples/scheme_comparison.py [benchmark]
"""

import sys

from repro import NetworkInMemory, SystemConfig, Scheme
from repro.workloads import SyntheticWorkload, BENCHMARK_NAMES


def main(benchmark: str = "swim") -> None:
    if benchmark not in BENCHMARK_NAMES:
        raise SystemExit(
            f"unknown benchmark {benchmark!r}; choose from {BENCHMARK_NAMES}"
        )
    print(f"Benchmark: {benchmark} (synthetic SPEC OMP)\n")
    header = (
        f"{'scheme':15s} {'hit lat':>8s} {'IPC':>7s} "
        f"{'migrations':>11s} {'bus flits':>10s}"
    )
    print(header)
    print("-" * len(header))
    baseline_ipc = None
    for scheme in (
        Scheme.CMP_DNUCA,
        Scheme.CMP_DNUCA_2D,
        Scheme.CMP_SNUCA_3D,
        Scheme.CMP_DNUCA_3D,
    ):
        system = NetworkInMemory(SystemConfig(scheme=scheme))
        workload = SyntheticWorkload(benchmark, refs_per_cpu=30_000)
        stats = system.run_trace(workload.traces(), warmup_events=100_000)
        if scheme == Scheme.CMP_DNUCA_2D:
            baseline_ipc = stats.ipc
        gain = (
            f" ({(stats.ipc / baseline_ipc - 1) * 100:+.1f}% vs 2D)"
            if baseline_ipc and scheme.is_3d
            else ""
        )
        print(
            f"{scheme.value:15s} {stats.avg_l2_hit_latency:8.1f} "
            f"{stats.ipc:7.3f} {stats.migrations:11,} "
            f"{stats.bus_flits:10,.0f}{gain}"
        )
    print(
        "\nExpected shape (paper): the 3D schemes beat the 2D ones; "
        "CMP-SNUCA-3D needs no migration to do so, and CMP-DNUCA-3D "
        "combines both effects."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "swim")

"""Drive the cycle-accurate NoC/dTDMA fabric directly.

Characterizes the interconnect without any cache model on top:

1. latency-vs-load curve for a 2-layer mesh-plus-pillars fabric under
   uniform random traffic (each point is a fresh cycle-accurate run);
2. the pillar-contention experiment behind Section 3.3: hotspot traffic
   aimed at a single pillar router shows why CPUs should not share one.

Run:  python examples/noc_traffic.py
"""

from repro.noc import (
    Network,
    NetworkConfig,
    UniformRandomTraffic,
    HotspotTraffic,
    Coord,
)


def latency_vs_load() -> None:
    print("Uniform random traffic, 2 layers of 8x8 + 4 pillars")
    print(f"{'inj rate':>9s} {'mean latency':>13s} {'bus util':>9s}")
    for rate in (0.002, 0.005, 0.008, 0.012):
        config = NetworkConfig(
            width=8, height=8, layers=2,
            pillar_locations=((2, 2), (5, 2), (2, 5), (5, 5)),
        )
        network = Network(config)
        traffic = UniformRandomTraffic(network, injection_rate=rate, seed=7)
        traffic.run(1_500)
        bus_util = sum(
            p.utilization for p in network.pillars.values()
        ) / len(network.pillars)
        print(
            f"{rate:9.3f} {network.mean_packet_latency():13.2f} "
            f"{bus_util:9.3f}"
        )


def pillar_contention() -> None:
    print("\nHotspot traffic at one pillar (CPUs sharing a pillar)")
    print(f"{'hotspot frac':>13s} {'mean latency':>13s} {'bus util':>9s}")
    for fraction in (0.0, 0.3, 0.6):
        config = NetworkConfig(
            width=8, height=8, layers=2,
            pillar_locations=((2, 2), (5, 5)),
        )
        network = Network(config)
        traffic = HotspotTraffic(
            network,
            injection_rate=0.006,
            hotspots=[Coord(2, 2, 0), Coord(2, 2, 1)],
            hotspot_fraction=fraction,
            seed=11,
        )
        traffic.run(1_500)
        bus_util = network.pillars[(2, 2)].utilization
        print(
            f"{fraction:13.1f} {network.mean_packet_latency():13.2f} "
            f"{bus_util:9.3f}"
        )
    print(
        "\nConcentrating traffic on one pillar raises both latency and "
        "that pillar's bus utilization — the congestion argument for one "
        "CPU per pillar, offset in all three dimensions."
    )


if __name__ == "__main__":
    latency_vs_load()
    pillar_contention()

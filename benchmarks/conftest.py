"""Shared configuration for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures at the
``quick`` experiment scale (set ``REPRO_SCALE=full`` for the EXPERIMENTS.md
numbers) and asserts the paper's qualitative shape.  Simulations are long,
so each benchmark runs exactly one round.
"""

import pytest


@pytest.fixture()
def once(benchmark):
    """Run the benchmarked callable exactly once and return its result."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner

"""Bench: regenerate Figure 17 (L2 latency vs pillar count)."""

from repro.experiments import fig17
from repro.experiments.config import QUICK

SUBSET = ("art", "swim")


def test_fig17_pillar_count(once):
    results = once(fig17.run, benchmarks=SUBSET, scale=QUICK)
    for benchmark, row in results.items():
        # Fewer pillars -> more bus contention and longer detours.
        assert row[2] > row[8], benchmark
        # Paper: average L2 latency increases by 1 to 7 cycles from 8 to
        # 2 pillars; allow a widened band for the scaled-down runs.
        delta = row[2] - row[8]
        assert 0.5 < delta < 30.0, (benchmark, delta)

"""Bench: regenerate Figure 15 (IPC per scheme)."""

from repro.core.schemes import Scheme
from repro.experiments import fig15
from repro.experiments.config import QUICK

SUBSET = ("art", "mgrid", "swim")


def test_fig15_ipc(once):
    results = once(fig15.run, benchmarks=SUBSET, scale=QUICK)
    gains = fig15.improvements(results)

    for benchmark in SUBSET:
        # Both 3D schemes improve IPC over our 2D scheme.
        assert gains[benchmark][Scheme.CMP_DNUCA_3D] > 0, benchmark
        assert gains[benchmark][Scheme.CMP_SNUCA_3D] > 0, benchmark
        # Migration on top of 3D never hurts.
        assert (
            results[benchmark][Scheme.CMP_DNUCA_3D]
            >= results[benchmark][Scheme.CMP_SNUCA_3D] * 0.99
        )

    # IPC improvements are commensurate with L2 access volume: the
    # L2-heavy benchmarks gain more than the light one (paper: mgrid,
    # swim, wupwise gain most, up to 37%).
    heavy_gain = max(
        gains["mgrid"][Scheme.CMP_DNUCA_3D],
        gains["swim"][Scheme.CMP_DNUCA_3D],
    )
    assert heavy_gain > 3.0

"""Bench: regenerate Table 2 (pillar via area vs pitch)."""

import pytest

from repro.experiments import table2
from repro.models.via import area_overhead_vs_router

PAPER = {10.0: 62_500, 5.0: 15_625, 1.0: 625, 0.2: 25}


def test_table2_via_area(once):
    rows = once(table2.run)
    measured = dict(rows)
    for pitch, paper_area in PAPER.items():
        assert measured[pitch] == pytest.approx(paper_area, rel=1e-6)
    # "even at a pitch of 5 um ... around 4% ... not overwhelming"
    assert area_overhead_vs_router(5.0) < 0.05
    # at the state-of-the-art 0.2 um pitch, negligible
    assert area_overhead_vs_router(0.2) < 0.001

"""Bench: sweep-service load — 1000 concurrent submissions, 4 simulations.

Boots a real :class:`SweepServer` (process executor, fresh cache) and
fires ``SUBMISSIONS`` concurrent submissions of the same 4-cell grid
from rotating tenants over HTTP, starting **cold** so the harness
exercises every path at once: the first submission enqueues the four
cells, the storm behind it rides along via in-flight dedup, and
everything after the cells land is a submit-time cache hit.  A warm
resubmission pass then measures the steady mostly-cached state.

Acceptance bars (the ISSUE's load target):
  - every submission is accepted and completes with zero failed cells;
  - the four distinct specs are simulated exactly once each —
    ``cells_simulated == 4`` after 1000 submissions of 4000 cells;
  - results land in ``BENCH_serve.json`` with throughput and job-latency
    percentiles.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from repro.core.schemes import Scheme
from repro.experiments.config import ExperimentScale
from repro.experiments.spec import SimSpec
from repro.serve.client import AsyncServeClient, ServerBusy
from repro.serve.scheduler import JobStore
from repro.serve.server import SweepServer

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_serve.json"

SCALE = ExperimentScale(name="serve-load", refs_per_cpu=200)
GRID = [
    SimSpec.make(scheme, benchmark, scale=SCALE)
    for scheme in (Scheme.CMP_DNUCA_3D, Scheme.CMP_SNUCA_3D)
    for benchmark in ("art", "swim")
]
SUBMISSIONS = 1000
TENANTS = 8
WORKERS = 4
MAX_PENDING = 1024
CONCURRENCY = 128  # simultaneous open client connections (fd budget)


def _percentile(sorted_values: list, q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


async def _submit_and_wait(
    client: AsyncServeClient, gate: asyncio.Semaphore
) -> dict:
    """One tenant submission: submit (retrying on 429) and run to done."""
    start = time.perf_counter()
    attempts = 0
    async with gate:
        while True:
            try:
                snapshot = await client.submit(GRID)
                break
            except ServerBusy as busy:
                attempts += 1
                if attempts > 50:
                    raise
                await asyncio.sleep(busy.retry_after_s)
        if snapshot.state != "done":
            snapshot = await client.wait(
                snapshot.job_id, poll_s=0.2, timeout_s=600.0
            )
    return {
        "latency_s": time.perf_counter() - start,
        "failed": snapshot.failed,
        "done": snapshot.done,
        "retries": attempts,
    }


async def _storm() -> dict:
    store = JobStore(
        workers=WORKERS,
        max_pending=MAX_PENDING,
        use_cache=True,
        cache_dir=str(REPO_ROOT / ".repro_cache_bench"),
        executor="process",
    )
    # A fresh cache directory per run: the cold phase must really be cold.
    import shutil

    shutil.rmtree(store.cache.root, ignore_errors=True)
    await store.start()
    server = SweepServer(store, port=0)
    port = await server.start()
    try:
        clients = [
            AsyncServeClient(port=port, tenant=f"tenant-{i}")
            for i in range(TENANTS)
        ]
        gate = asyncio.Semaphore(CONCURRENCY)

        start = time.perf_counter()
        outcomes = await asyncio.gather(*(
            _submit_and_wait(clients[i % TENANTS], gate)
            for i in range(SUBMISSIONS)
        ))
        elapsed = time.perf_counter() - start

        # Steady-state pass: everything is cached, jobs finish at submit.
        warm_start = time.perf_counter()
        warm = await clients[0].submit(GRID)
        warm_latency = time.perf_counter() - warm_start
        totals = await clients[0].stats()
    finally:
        await server.close()
        await store.close()
        shutil.rmtree(store.cache.root, ignore_errors=True)

    latencies = sorted(item["latency_s"] for item in outcomes)
    return {
        "elapsed_s": elapsed,
        "submissions_per_sec": SUBMISSIONS / elapsed,
        "failed_cells": sum(item["failed"] for item in outcomes),
        "delivered_cells": sum(item["done"] for item in outcomes),
        "busy_retries": sum(item["retries"] for item in outcomes),
        "job_latency_s": {
            "p50": _percentile(latencies, 0.50),
            "p90": _percentile(latencies, 0.90),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1],
        },
        "warm_resubmit": {
            "state_at_submit": warm.state,
            "latency_s": warm_latency,
            "cached": warm.cached,
        },
        "totals": totals,
    }


def test_serve_load(once):
    results = once(lambda: asyncio.run(_storm()))

    payload = {
        "benchmark": "serve_load",
        "config": {
            "submissions": SUBMISSIONS,
            "grid_cells": len(GRID),
            "tenants": TENANTS,
            "workers": WORKERS,
            "max_pending": MAX_PENDING,
            "concurrency": CONCURRENCY,
            "refs_per_cpu": SCALE.refs_per_cpu,
        },
        "results": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    totals = results["totals"]
    # Zero failed cells across a thousand concurrent submissions.
    assert results["failed_cells"] == 0
    assert totals["cells_failed"] == 0
    assert totals["jobs_done"] >= SUBMISSIONS
    # Every tenant got every cell...
    assert results["delivered_cells"] == SUBMISSIONS * len(GRID)
    # ...but the duplicated grid was simulated exactly once per spec.
    assert totals["cells_simulated"] == len(GRID)
    # (storm: 999 duplicate grids; plus the warm resubmission's 4 hits)
    assert (
        totals["cells_cached"] + totals["cells_deduped"]
        == SUBMISSIONS * len(GRID)
    )
    # The warm pass is a pure cache hit: done before the 202 returns.
    assert results["warm_resubmit"]["state_at_submit"] == "done"
    assert results["warm_resubmit"]["cached"] == len(GRID)


# -- journal overhead gate -----------------------------------------------------
#
# The durability journal rides the submission hot path (every accepted
# job appends a "job" record before the 202 returns).  This gate keeps
# that cost honest: warm submissions/s with the journal on must stay
# within 15% of the same store with the journal off.

WARM_SUBMISSIONS = 400


def _synthetic_stats(spec: SimSpec):
    from repro.core.system import RunStats

    return RunStats(
        scheme=spec.scheme,
        avg_l2_hit_latency=20.0,
        avg_l2_miss_latency=280.0,
        l2_hits=1000,
        l2_misses=50,
        migrations=4,
        ipc=0.6,
        per_cpu_ipc=[0.6] * 8,
        l1_miss_rate=0.08,
        flit_hops=500.0,
        bus_flits=25.0,
        invalidations=2,
        instructions=100000.0,
        cycles=160000.0,
    )


async def _warm_submission_rate(cache_dir: str, journal: bool) -> float:
    """Submissions/s against a fully warm cache (pure submit-path cost)."""
    from repro.experiments.orchestrator import ResultCache

    cache = ResultCache(cache_dir)
    for spec in GRID:
        if cache.get(spec) is None:
            cache.put(spec, _synthetic_stats(spec))

    store = JobStore(
        workers=0, use_cache=True, cache_dir=cache_dir, journal=journal
    )
    await store.start()
    server = SweepServer(store, port=0)
    port = await server.start()
    try:
        client = AsyncServeClient(port=port, tenant="bench")
        primer = await client.submit(GRID)
        assert primer.state == "done"  # warm: resolved at submit time

        start = time.perf_counter()
        for __ in range(WARM_SUBMISSIONS):
            await client.submit(GRID)
        elapsed = time.perf_counter() - start
    finally:
        await server.close()
        await store.close()
    return WARM_SUBMISSIONS / elapsed


async def _journal_overhead() -> dict:
    import shutil
    import tempfile

    root = tempfile.mkdtemp(prefix="repro-journal-bench-")
    try:
        baseline = await _warm_submission_rate(
            f"{root}/plain", journal=False
        )
        journaled = await _warm_submission_rate(
            f"{root}/journaled", journal=True
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "warm_submissions": WARM_SUBMISSIONS,
        "grid_cells": len(GRID),
        "baseline_submissions_per_sec": baseline,
        "journaled_submissions_per_sec": journaled,
        "throughput_ratio": journaled / baseline,
    }


def test_journal_overhead(once):
    results = once(lambda: asyncio.run(_journal_overhead()))

    payload = {}
    if OUTPUT.exists():
        try:
            payload = json.loads(OUTPUT.read_text())
        except ValueError:
            payload = {}
    payload["journal_overhead"] = results
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    # The WAL must stay cheap: within 15% of the in-memory submit path.
    assert results["throughput_ratio"] >= 0.85, results

"""Bench: loaded-mesh NoC throughput — reference vs optimized vs vector.

Drives the paper's 16x8 x 2-layer pillar mesh with uniform random traffic
at three operating points and measures wall-clock cycles/sec for three
fabrics: the frozen naive implementation (``repro.noc.reference``), the
allocation-free object hot path, and the SoA batch fabric
(``FabricKind.VECTOR``) that advances the whole mesh with numpy bulk ops.

Timing on a shared machine is noisy (observed trial spread of several x),
so every (fabric, rate) cell takes the best of ``TRIALS`` runs; the
simulated behaviour is seeded and bit-stable across trials, so only the
wall clock varies.  Results land in ``BENCH_noc.json`` at the repo root,
including the survivorship-bias observables (``delivered_fraction`` and
the in-flight age summary) so a latency mean is never read without its
censoring context.

A fourth operating point ("sparse") replays the regime ``mode="cycle"``
actually runs in: one transaction leg in flight at a time on the large
mesh, the fabric quiescent between legs.  This is where the vector
fabric's occupancy-adaptive advance (incremental occupied set + scalar
sparse path + idle fast-forward) must beat the object hot path for
VECTOR to be the universal default.

Acceptance bars:
  - optimized >= 2x reference cycles/sec at saturation (injection 0.2),
    with the workload provably identical (same injections, deliveries,
    in-flight population, mean latency) under both object fabrics;
  - vector >= 10x reference cycles/sec at saturation;
  - vector >= optimized cycles/sec at the sparse leg-at-a-time point,
    with the per-leg latency sum exactly equal (zero-load contract);
  - a 32x32x4 mesh cell ("vector_large") completes under the vector
    fabric inside the benchmark run, demonstrating paper-beyond scale.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro.noc.network import Network, NetworkConfig
from repro.noc.traffic import UniformRandomTraffic
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_noc.json"

# Pillar placement from the paper's 4-pillar configuration (Section 5.4).
PILLARS = ((3, 3), (11, 3), (7, 5), (14, 6))
MESH = dict(width=16, height=8, layers=2, pillar_locations=PILLARS)

# Beyond-paper scale smoke: 32x32x4 with the paper placement scaled up.
LARGE_PILLARS = ((6, 12), (22, 12), (14, 20), (28, 24))
LARGE_MESH = dict(width=32, height=32, layers=4, pillar_locations=LARGE_PILLARS)
LARGE_CYCLES = 200
LARGE_RATE = 0.05

# (label, injection rate in packets/node/cycle)
OPERATING_POINTS = [
    ("low", 0.002),
    ("medium", 0.05),
    ("saturation", 0.2),
]

CYCLES = 1000
SEED = 5
TRIALS = 3
VECTOR_REPEATS = 3

# Sparse point: one leg in flight at a time on the large mesh — the
# CyclePricer regime (send one packet, run the engine until delivery).
SPARSE_LEGS = 200


def _run_once(fabric: str, rate: float, mesh: dict, cycles: int) -> dict:
    engine = Engine("bench")
    stats = StatsRegistry("bench")
    network = Network(NetworkConfig(**mesh), engine=engine, stats=stats,
                      fabric=fabric)
    generator = UniformRandomTraffic(network, rate, seed=SEED)
    start = time.perf_counter()
    engine.run(cycles)
    elapsed = time.perf_counter() - start
    ages = network.in_flight_ages()
    return {
        "cycles_per_sec": cycles / elapsed,
        "wall_seconds": elapsed,
        "packets_sent": generator.packets_sent,
        "packets_received": stats.scope("nic").counter("packets_received").value,
        "in_flight": network.in_flight,
        "final_cycle": engine.cycle,
        "mean_latency": stats.scope("nic").histogram("packet_latency").mean,
        "delivered_fraction": network.delivered_fraction(),
        "in_flight_mean_age": ages["mean_age"],
        "in_flight_max_age": ages["max_age"],
    }


def _measure(fabric: str, rate: float, mesh: dict = MESH,
             cycles: int = CYCLES, trials: int = TRIALS) -> dict:
    """Best-of-``trials`` wall clock; the simulated behaviour is seeded."""
    best = None
    walls = []
    for __ in range(trials):
        result = _run_once(fabric, rate, mesh, cycles)
        walls.append(round(result["wall_seconds"], 4))
        if best is None or result["cycles_per_sec"] > best["cycles_per_sec"]:
            best = result
    best["trial_wall_seconds"] = walls
    return best


def _measure_point(rate: float) -> dict:
    """All three fabrics at one operating point, trials interleaved.

    Speedups are computed per paired trial (reference/optimized/vector
    run back-to-back, so each pair sees similar machine load) and the
    best pair is reported — robust against a single lucky-fast or
    unlucky-slow trial skewing the ratio on a noisy shared machine.
    The per-fabric stats come from each fabric's own fastest trial.
    """
    best = {}
    walls = {"reference": [], "optimized": [], "vector": []}
    speedups, vector_speedups = [], []
    for __ in range(TRIALS):
        trial = {}
        for fabric in ("reference", "optimized", "vector"):
            # The vector runs are an order of magnitude shorter than the
            # object-fabric runs, so scheduler noise hits them hardest;
            # repeat them within the paired window and keep the best.
            repeats = VECTOR_REPEATS if fabric == "vector" else 1
            result = None
            for ___ in range(repeats):
                attempt = _run_once(fabric, rate, MESH, CYCLES)
                if (
                    result is None
                    or attempt["cycles_per_sec"] > result["cycles_per_sec"]
                ):
                    result = attempt
            trial[fabric] = result
            walls[fabric].append(round(result["wall_seconds"], 4))
            held = best.get(fabric)
            if held is None or result["cycles_per_sec"] > held["cycles_per_sec"]:
                best[fabric] = result
        ref_cps = trial["reference"]["cycles_per_sec"]
        speedups.append(trial["optimized"]["cycles_per_sec"] / ref_cps)
        vector_speedups.append(trial["vector"]["cycles_per_sec"] / ref_cps)
    for fabric, entry in best.items():
        entry["trial_wall_seconds"] = walls[fabric]
    return {
        "reference": best["reference"],
        "optimized": best["optimized"],
        "vector": best["vector"],
        "speedup": max(speedups),
        "vector_speedup": max(vector_speedups),
        "trial_speedups": [round(s, 3) for s in speedups],
        "trial_vector_speedups": [round(s, 3) for s in vector_speedups],
    }


def _run_sparse_once(fabric: str) -> dict:
    """Leg-at-a-time traffic on the large mesh: the cycle-mode regime."""
    engine = Engine("bench")
    stats = StatsRegistry("bench")
    network = Network(NetworkConfig(**LARGE_MESH), engine=engine,
                      stats=stats, fabric=fabric)
    nodes = list(network.coords())
    rng = random.Random(SEED)
    legs = [rng.sample(nodes, 2) for __ in range(SPARSE_LEGS)]
    latency_sum = 0.0
    start = time.perf_counter()
    for src, dest in legs:
        packet = network.send(src, dest, size_flits=4)
        engine.run_until(
            lambda: packet.ejected_cycle is not None, max_cycles=1_000_000
        )
        latency_sum += float(packet.latency)
    elapsed = time.perf_counter() - start
    return {
        "cycles_per_sec": engine.cycle / elapsed,
        "wall_seconds": elapsed,
        "legs": SPARSE_LEGS,
        "final_cycle": engine.cycle,
        "latency_sum": latency_sum,
        "packets_received": stats.scope("nic").counter(
            "packets_received"
        ).value,
    }


def _measure_sparse() -> dict:
    """Optimized vs vector at the sparse point, trials paired.

    Same robustness scheme as :func:`_measure_point`: the speedup is the
    best of the per-trial paired ratios, never a cross-trial ratio.
    """
    best = {}
    walls = {"optimized": [], "vector": []}
    speedups = []
    for __ in range(TRIALS):
        trial = {}
        for fabric in ("optimized", "vector"):
            result = _run_sparse_once(fabric)
            trial[fabric] = result
            walls[fabric].append(round(result["wall_seconds"], 4))
            held = best.get(fabric)
            if held is None or result["cycles_per_sec"] > held["cycles_per_sec"]:
                best[fabric] = result
        speedups.append(
            trial["vector"]["cycles_per_sec"]
            / trial["optimized"]["cycles_per_sec"]
        )
    for fabric, entry in best.items():
        entry["trial_wall_seconds"] = walls[fabric]
    return {
        "mesh": {k: v for k, v in LARGE_MESH.items()},
        "legs": SPARSE_LEGS,
        "optimized": best["optimized"],
        "vector": best["vector"],
        "vector_speedup": max(speedups),
        "trial_vector_speedups": [round(s, 3) for s in speedups],
    }


def test_noc_throughput(once):
    def sweep():
        results = {}
        for label, rate in OPERATING_POINTS:
            results[label] = {"injection_rate": rate, **_measure_point(rate)}
        results["sparse"] = _measure_sparse()
        results["vector_large"] = {
            "mesh": {k: v for k, v in LARGE_MESH.items()},
            "injection_rate": LARGE_RATE,
            "cycles": LARGE_CYCLES,
            "vector": _measure(
                "vector", LARGE_RATE, mesh=LARGE_MESH,
                cycles=LARGE_CYCLES, trials=1,
            ),
        }
        return results

    results = once(sweep)

    payload = {
        "benchmark": "noc_throughput",
        "mesh": {"width": 16, "height": 8, "layers": 2, "pillars": PILLARS},
        "cycles": CYCLES,
        "trials": TRIALS,
        "results": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    for label, __ in OPERATING_POINTS:
        entry = results[label]
        # Identical workload under both object fabrics: same injections
        # and deliveries, same in-flight population, same mean latency.
        # (The full counter-for-counter equality lives in
        # tests/integration/test_noc_differential.py; the vector fabric
        # is held to distribution-level equivalence there.)
        reference, optimized = entry["reference"], entry["optimized"]
        for key in (
            "packets_sent",
            "packets_received",
            "in_flight",
            "final_cycle",
            "mean_latency",
            "delivered_fraction",
        ):
            assert optimized[key] == reference[key], (label, key)
        # Same injection sequence and exact conservation on the vector
        # fabric too.
        vector = entry["vector"]
        assert vector["packets_sent"] == reference["packets_sent"], label
        assert (
            vector["packets_received"] + vector["in_flight"]
            == vector["packets_sent"]
        ), label

    # Survivorship-bias guard: under saturation most packets are still in
    # flight, and the stats must say so rather than present the mean
    # latency of the lucky survivors as the network's latency.
    for fabric in ("reference", "optimized", "vector"):
        saturated = results["saturation"][fabric]
        assert saturated["delivered_fraction"] < 0.5, fabric
        assert saturated["in_flight_max_age"] > 0, fabric

    # Acceptance thresholds.  ISSUE 3: optimized >= 2x at saturation, the
    # regime where per-flit object churn dominated the naive fabric.
    assert results["saturation"]["speedup"] >= 2.0, (
        f"optimized fabric only "
        f"{results['saturation']['speedup']:.2f}x at saturation"
    )
    # The optimized fabric must never lose at the other operating points.
    assert results["low"]["speedup"] >= 0.75
    assert results["medium"]["speedup"] >= 1.0
    # ISSUE 6: the SoA batch fabric clears 10x at saturation.
    assert results["saturation"]["vector_speedup"] >= 10.0, (
        f"vector fabric only "
        f"{results['saturation']['vector_speedup']:.2f}x at saturation"
    )
    # ISSUE 8: occupancy-adaptive advance — the vector fabric wins the
    # sparse leg-at-a-time regime too, making it the universal default.
    sparse = results["sparse"]
    assert sparse["vector_speedup"] >= 1.0, (
        f"vector fabric only {sparse['vector_speedup']:.2f}x the optimized "
        f"fabric at the sparse operating point"
    )
    # Zero-load contract: with one leg in flight at a time there is no
    # contention, so per-leg latencies — not just their distribution —
    # are exactly equal across fabrics.
    assert sparse["vector"]["latency_sum"] == sparse["optimized"]["latency_sum"]
    assert (
        sparse["vector"]["packets_received"]
        == sparse["optimized"]["packets_received"]
        == SPARSE_LEGS
    )
    # The 32x32x4 smoke cell must finish and conserve packets.
    large = results["vector_large"]["vector"]
    assert large["final_cycle"] == LARGE_CYCLES
    assert (
        large["packets_received"] + large["in_flight"]
        == large["packets_sent"]
    )

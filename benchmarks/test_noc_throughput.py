"""Bench: loaded-mesh NoC throughput, optimized hot path vs naive fabric.

Drives the paper's 16x8 x 2-layer pillar mesh with uniform random traffic
at three operating points and measures wall-clock cycles/sec for the
allocation-free fabric (cached route tables, shared link pipeline, posted
credits, flit pooling, blocked-evaluate cache) against the frozen naive
implementation (``repro.noc.reference``) it was differentially verified
against.  Results are written to ``BENCH_noc.json`` at the repo root.

Unlike the kernel benchmark (which wins when the mesh is *quiet*), the hot
path targets the loaded regimes where the SPEC OMP evaluation lives: the
acceptance bar is >=2x cycles/sec at saturation (injection 0.2), with the
workload provably identical (same injections, same deliveries, same final
cycle) under both fabrics.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.noc.network import Network, NetworkConfig
from repro.noc.traffic import UniformRandomTraffic
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_noc.json"

# Pillar placement from the paper's 4-pillar configuration (Section 5.4).
PILLARS = ((3, 3), (11, 3), (7, 5), (14, 6))

# (label, injection rate in packets/node/cycle)
OPERATING_POINTS = [
    ("low", 0.002),
    ("medium", 0.05),
    ("saturation", 0.2),
]

CYCLES = 1000
SEED = 5


def _measure(fabric: str, rate: float) -> dict:
    engine = Engine("bench")
    stats = StatsRegistry("bench")
    network = Network(
        NetworkConfig(width=16, height=8, layers=2, pillar_locations=PILLARS),
        engine=engine,
        stats=stats,
        fabric=fabric,
    )
    generator = UniformRandomTraffic(network, rate, seed=SEED)
    start = time.perf_counter()
    engine.run(CYCLES)
    elapsed = time.perf_counter() - start
    return {
        "cycles_per_sec": CYCLES / elapsed,
        "wall_seconds": elapsed,
        "packets_sent": generator.packets_sent,
        "packets_received": stats.scope("nic").counter("packets_received").value,
        "in_flight": network.in_flight,
        "final_cycle": engine.cycle,
        "mean_latency": stats.scope("nic").histogram("packet_latency").mean,
    }


def test_noc_throughput(once):
    def sweep():
        results = {}
        for label, rate in OPERATING_POINTS:
            reference = _measure("reference", rate)
            optimized = _measure("optimized", rate)
            results[label] = {
                "injection_rate": rate,
                "reference": reference,
                "optimized": optimized,
                "speedup": (
                    optimized["cycles_per_sec"]
                    / reference["cycles_per_sec"]
                ),
            }
        return results

    results = once(sweep)

    payload = {
        "benchmark": "noc_throughput",
        "mesh": {"width": 16, "height": 8, "layers": 2, "pillars": PILLARS},
        "cycles": CYCLES,
        "results": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    for label, entry in results.items():
        # Identical workload under both fabrics: same injections and
        # deliveries, same in-flight population, same mean latency.  (The
        # full counter-for-counter equality lives in
        # tests/integration/test_noc_differential.py.)
        reference, optimized = entry["reference"], entry["optimized"]
        for key in (
            "packets_sent",
            "packets_received",
            "in_flight",
            "final_cycle",
            "mean_latency",
        ):
            assert optimized[key] == reference[key], (label, key)

    # Acceptance threshold (ISSUE 3): >=2x cycles/sec at saturation, the
    # regime where per-flit object churn dominated the naive fabric.
    assert results["saturation"]["speedup"] >= 2.0, (
        f"optimized fabric only "
        f"{results['saturation']['speedup']:.2f}x at saturation"
    )
    # The optimized fabric must never lose at the other operating points.
    assert results["low"]["speedup"] >= 0.75
    assert results["medium"]["speedup"] >= 1.0

"""Bench: regenerate Figure 14 (migration counts vs CMP-DNUCA-2D)."""

from repro.core.schemes import Scheme
from repro.experiments import fig14
from repro.experiments.config import QUICK

SUBSET = ("art", "mgrid", "swim")


def test_fig14_migrations(once):
    results = once(fig14.run, benchmarks=SUBSET, scale=QUICK)
    for benchmark, row in results.items():
        # The 3D scheme exercises migration less frequently than the 2D
        # scheme (the vicinity cylinder already covers the data).
        assert row[Scheme.CMP_DNUCA_3D] < 1.0, benchmark
        # B&W's per-hit bankset promotion churns busily too (its chain
        # restriction caps it, but it stays the same order of magnitude).
        assert row[Scheme.CMP_DNUCA] > 0.4, benchmark

"""Ablation: CPU stacking vs 3D offsetting — the network side.

Table 3 shows stacking is thermally disastrous; Section 3.3 argues it is
*also* bad for the network, because stacked CPUs funnel their traffic
through a single shared pillar.  This bench runs the same 3D scheme and
workload under both placements and compares performance.
"""

from repro.core.placement import PlacementPolicy
from repro.core.schemes import Scheme
from repro.core.system import NetworkInMemory, SystemConfig
from repro.thermal import simulate_thermal
from repro.workloads.generator import SyntheticWorkload

REFS = 25_000
WARMUP = 8 * REFS * 6 // 10


def run_placements():
    results = {}
    for label, override in (
        ("offset", None),
        ("stacked", PlacementPolicy.STACKED),
    ):
        system = NetworkInMemory(
            SystemConfig(
                scheme=Scheme.CMP_DNUCA_3D, placement_override=override
            )
        )
        workload = SyntheticWorkload("swim", refs_per_cpu=REFS)
        stats = system.run_trace(workload.traces(), warmup_events=WARMUP)
        results[label] = (stats, system)
    return results


def test_ablation_stacking(once):
    results = once(run_placements)
    offset_stats, offset_system = results["offset"]
    stacked_stats, stacked_system = results["stacked"]
    offset_topology = offset_system.topology
    stacked_topology = stacked_system.topology

    # Network: with shortest-path pillar selection, stacking buys no
    # meaningful latency advantage (CPUs sit on pillar columns but their
    # replies and searches still span the chip); the cycle-accurate
    # hotspot study (tests/integration/test_fabric_load.py and
    # examples/noc_traffic.py) shows the congestion cliff when vertical
    # traffic concentrates on one pillar.  Here we check stacking is not
    # a free lunch on performance...
    assert stacked_stats.avg_l2_hit_latency > (
        offset_stats.avg_l2_hit_latency * 0.8
    )
    assert stacked_stats.bus_flits > 0

    # ...because the decisive cost is thermal (Table 3): same chips,
    # solved — stacking spikes the peak temperature.
    offset_thermal = simulate_thermal(offset_topology)
    stacked_thermal = simulate_thermal(stacked_topology)
    assert stacked_thermal.peak_c > offset_thermal.peak_c + 20
    # Average temperature is placement-independent.
    assert abs(stacked_thermal.avg_c - offset_thermal.avg_c) < 1.0

"""Bench: regenerate Figure 16 (L2 latency vs cache size, 2D vs 3D)."""

from repro.core.schemes import Scheme
from repro.experiments import fig16
from repro.experiments.config import QUICK

SUBSET = ("galgel", "swim")


def test_fig16_cache_scaling(once):
    results = once(fig16.run, benchmarks=SUBSET, scale=QUICK)

    for benchmark, row in results.items():
        for scheme in (Scheme.CMP_DNUCA_2D, Scheme.CMP_DNUCA_3D):
            # Latency grows with cache size under both topologies.
            assert row[(scheme, 64)] > row[(scheme, 16)], (benchmark, scheme)
        # 3D stays cheaper than 2D at every size.
        for cache_mb in (16, 32, 64):
            assert (
                row[(Scheme.CMP_DNUCA_3D, cache_mb)]
                < row[(Scheme.CMP_DNUCA_2D, cache_mb)]
            ), (benchmark, cache_mb)

    # 3D scales better: smaller mean growth per doubling (paper: ~5 vs ~7).
    growth_2d = fig16.growth_per_doubling(results, Scheme.CMP_DNUCA_2D)
    growth_3d = fig16.growth_per_doubling(results, Scheme.CMP_DNUCA_3D)
    assert 0 < growth_3d < growth_2d

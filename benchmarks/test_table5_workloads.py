"""Bench: regenerate Table 5 (benchmark characterization)."""

from repro.experiments import table5
from repro.experiments.config import QUICK


def test_table5_workloads(once):
    results = once(table5.run, scale=QUICK)
    assert set(results) == {
        "ammp", "apsi", "art", "equake", "fma3d",
        "galgel", "mgrid", "swim", "wupwise",
    }
    # The paper's headline: mgrid, swim and wupwise exhibit many more L2
    # accesses than the rest, driven by higher L1 miss rates.  (Compare
    # transaction *volumes* at equal trace length — per-cycle intensity
    # is confounded by the heavy benchmarks' own stalls.)
    heavy = ("mgrid", "swim", "wupwise")
    light = tuple(name for name in results if name not in heavy)
    heavy_min = min(results[n]["measured_l2_transactions"] for n in heavy)
    light_max = max(results[n]["measured_l2_transactions"] for n in light)
    assert heavy_min > light_max
    heavy_miss = min(results[n]["measured_l1_miss_rate"] for n in heavy)
    light_miss = max(
        results[n]["measured_l1_miss_rate"] for n in ("art", "fma3d")
    )
    assert heavy_miss > light_miss
    # Paper columns recorded faithfully.
    assert results["mgrid"]["paper_l2_transactions"] == 204_815_737
    assert results["equake"]["fastforward_mcycles"] == 21_538

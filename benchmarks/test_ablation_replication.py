"""Ablation (extension): migration vs replication on the 3D substrate.

The paper picked migration; NuRapid/victim-replication picked copies.
This bench runs both families over the same 3D chip and functional
workload-independent scenario: repeated remote reads with occasional
writes, checking each policy's characteristic signature — migration moves
the sole copy stepwise; replication serves reads locally at the cost of
write-time invalidations.
"""

from repro.core.chip import ChipConfig
from repro.core.placement import build_topology
from repro.cache.nuca import AccessType, NucaL2
from repro.cache.migration import MigrationConfig
from repro.cache.replication import ReplicatingNucaL2


def run_policies():
    topology = build_topology(ChipConfig())
    migrating = NucaL2(
        topology, MigrationConfig(enabled=True, trigger_threshold=2)
    )
    replicating = ReplicatingNucaL2(build_topology(ChipConfig()))
    results = {}
    for label, nuca in (("migration", migrating),
                        ("replication", replicating)):
        remote = nuca.search.plan(0).step2[0]
        addresses = [nuca.addr_map.compose(remote, i) for i in range(64)]
        cycle = 0.0
        local_hits = 0
        for sweep in range(8):
            for address in addresses:
                outcome = nuca.access(0, address, AccessType.READ, cycle)
                cycle += 25.0
                if (
                    outcome.hit
                    and outcome.cluster
                    == nuca.search.plan(0).local_cluster
                ):
                    local_hits += 1
        # A burst of writes from another CPU.
        for address in addresses[:16]:
            nuca.access(1, address, AccessType.WRITE, cycle)
            cycle += 25.0
        results[label] = {
            "local_hits": local_hits,
            "migrations": nuca.migrations,
            "replica_invals": nuca.stats.scope("l2").counter(
                "replica_invalidations"
            ).value,
        }
    return results


def test_ablation_replication(once):
    results = once(run_policies)
    migration = results["migration"]
    replication = results["replication"]

    # Each family shows its signature.
    assert migration["migrations"] > 0
    assert replication["migrations"] == 0
    assert replication["local_hits"] > 0
    assert replication["replica_invals"] > 0
    assert migration["replica_invals"] == 0

    # Replication localizes single-reader reads at least as fast as
    # stepwise migration does (one install vs several one-cluster moves).
    assert replication["local_hits"] >= migration["local_hits"]

"""Bench: regenerate Figure 13 (average L2 hit latency per scheme).

Uses a representative benchmark subset (one low-L1-miss, two high) at the
quick scale; run the module ``python -m repro.experiments.fig13`` with
``REPRO_SCALE=full`` for the complete nine-benchmark figure.
"""

from repro.core.schemes import Scheme
from repro.experiments import fig13
from repro.experiments.config import QUICK

SUBSET = ("art", "mgrid", "swim")


def test_fig13_l2_hit_latency(once):
    results = once(fig13.run, benchmarks=SUBSET, scale=QUICK)
    mean = fig13.averages(results)

    # Headline orderings of Section 5.2 (averaged over the subset):
    # static 3D beats migrating 2D; migration helps further in 3D.
    assert mean[Scheme.CMP_SNUCA_3D] < mean[Scheme.CMP_DNUCA_2D]
    assert mean[Scheme.CMP_DNUCA_3D] < mean[Scheme.CMP_SNUCA_3D]

    # The paper quotes ~10 cycles for 2D->3D-static and ~7 more for
    # migration; our reproduction's shape band (see EXPERIMENTS.md).
    static_gain = mean[Scheme.CMP_DNUCA_2D] - mean[Scheme.CMP_SNUCA_3D]
    migration_gain = mean[Scheme.CMP_SNUCA_3D] - mean[Scheme.CMP_DNUCA_3D]
    assert 2.0 < static_gain < 25.0
    assert 2.0 < migration_gain < 25.0

    # Total 3D benefit is substantial (paper: ~17 cycles).
    total = mean[Scheme.CMP_DNUCA_2D] - mean[Scheme.CMP_DNUCA_3D]
    assert total > 8.0

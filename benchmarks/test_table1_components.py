"""Bench: regenerate Table 1 (dTDMA component area/power vs NoC router)."""

from repro.experiments import table1
from repro.models.components import (
    DTDMA_ARBITER,
    DTDMA_RX_TX,
    NOC_ROUTER_5PORT,
)


def test_table1_components(once):
    rows = once(table1.run)
    assert len(rows) == 3
    by_name = {name: (power, area) for name, power, area in rows}
    router_power, router_area = by_name[NOC_ROUTER_5PORT.name]
    # Paper's point: bus hardware is orders of magnitude below the router.
    for spec in (DTDMA_RX_TX, DTDMA_ARBITER):
        power, area = by_name[spec.name]
        assert power < router_power / 100
        assert area < router_area / 100
    assert router_power == 0.11955
    assert router_area == 0.3748

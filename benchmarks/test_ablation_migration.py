"""Ablation: migration aggressiveness in the 3D scheme.

DESIGN.md calls out the migration trigger threshold as a design choice:
lower thresholds migrate more eagerly (more network traffic and power —
the data movements the paper wants to avoid), higher thresholds approach
the static scheme.  This bench sweeps the threshold and checks the
latency/traffic trade-off is monotone on both ends.
"""

from repro.core.schemes import Scheme
from repro.core.system import NetworkInMemory, SystemConfig
from repro.workloads.generator import SyntheticWorkload

REFS = 25_000
WARMUP = 8 * REFS * 6 // 10


def run_threshold_sweep():
    results = {}
    for threshold in (1, 3, 10**9):
        system = NetworkInMemory(
            SystemConfig(
                scheme=Scheme.CMP_DNUCA_3D, migration_threshold=threshold
            )
        )
        workload = SyntheticWorkload("swim", refs_per_cpu=REFS)
        results[threshold] = system.run_trace(
            workload.traces(), warmup_events=WARMUP
        )
    return results


def test_ablation_migration_threshold(once):
    results = once(run_threshold_sweep)
    eager, default, never = results[1], results[3], results[10**9]

    # Migration volume is monotone in the trigger threshold.
    assert eager.migrations > default.migrations > never.migrations
    assert never.migrations == 0

    # Both migrating configurations beat the effectively-static one.
    assert eager.avg_l2_hit_latency < never.avg_l2_hit_latency
    assert default.avg_l2_hit_latency < never.avg_l2_hit_latency

    # The paper's power argument: migration aggressiveness directly
    # multiplies data movements (each move is two line transfers), while
    # the latency return diminishes — the trade-off Section 4.2.3's lazy,
    # conservative policy navigates.
    assert eager.migrations > 2 * default.migrations

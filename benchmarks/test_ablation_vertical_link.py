"""Ablation: dTDMA bus pillars vs a 7-port 3D-mesh vertical link.

The paper eliminated the 7-port router in its design search: multi-hop
vertical traversal and a bigger crossbar would erase the benefit of the
tiny inter-layer distance.  The dTDMA bus is single-hop between *any* two
layers, so its crossing cost is constant in the layer count, while a
vertical mesh pays one full hop (router + wire latency) per layer crossed.
"""

from repro.core.chip import ChipConfig
from repro.core.placement import build_topology
from repro.core.latency_model import LatencyModel, LatencyModelConfig
from repro.noc.routing import Coord


def crossing_cost_bus(model: LatencyModel, layers_crossed: int) -> float:
    """dTDMA pillar: constant single-hop crossing."""
    return model.config.bus_overhead


def crossing_cost_router(model: LatencyModel, layers_crossed: int) -> float:
    """7-port 3D mesh: one router+link hop per layer crossed."""
    return model.config.hop_cycles * layers_crossed


def run_comparison() -> dict[int, tuple[float, float]]:
    topology = build_topology(ChipConfig(num_layers=4))
    model = LatencyModel(topology, LatencyModelConfig())
    results = {}
    for layers_crossed in (1, 2, 3):
        results[layers_crossed] = (
            crossing_cost_bus(model, layers_crossed),
            crossing_cost_router(model, layers_crossed),
        )
    return results


def test_ablation_vertical_link(once):
    results = once(run_comparison)
    # Single layer crossing: comparable cost either way.
    bus_1, router_1 = results[1]
    assert bus_1 <= router_1 + 1
    # Multi-layer crossings: the bus's single-hop property wins and the
    # gap grows with distance — the reason the paper rejects the 7-port
    # router for the vertical dimension.
    for layers_crossed in (2, 3):
        bus, router = results[layers_crossed]
        assert bus < router
    assert results[3][1] - results[3][0] > results[2][1] - results[2][0]


def test_ablation_bus_contention_bound(once):
    """The flip side: the shared bus saturates with enough clients; the
    paper bounds the dTDMA's advantage at <9 layers.  Measured on the
    real fabric: a fully loaded pillar serves exactly one flit/cycle."""
    from repro.noc.network import Network, NetworkConfig

    def run():
        net = Network(
            NetworkConfig(width=4, height=4, layers=4,
                          pillar_locations=((1, 1),))
        )
        packets = [
            net.send(Coord(1, 1, z), Coord(1, 1, (z + 1) % 4), size_flits=4)
            for z in range(4)
        ]
        net.quiesce()
        return net.pillars[(1, 1)], packets

    bus, packets = once(run)
    transfers = bus.stats.scope("bus").counter("flit_transfers").value
    busy = bus.stats.scope("bus").counter("busy_cycles").value
    assert transfers == 16
    assert busy == transfers  # one flit per cycle, never more
    assert all(p.ejected_cycle is not None for p in packets)

"""Bench: simulation-kernel throughput, naive vs activity-tracked.

Drives the paper's 16x8 x 2-layer mesh (Table 4 scale) with uniform random
traffic at three operating points and measures wall-clock cycles/sec for
the naive kernel (every component ticked every cycle) against the
activity-tracked kernel (idle components retired, fully idle windows
fast-forwarded).  Results are written to ``BENCH_kernel.json`` at the repo
root.

At low injection rates most routers are idle most cycles, so the tracked
kernel must be at least 3x faster there; at saturation nearly every router
is busy and the two kernels converge (the tracked kernel's bookkeeping
must not make it materially slower).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.noc.network import Network, NetworkConfig
from repro.noc.traffic import UniformRandomTraffic
from repro.sim.engine import Engine

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_kernel.json"

# Pillar placement from the paper's 4-pillar configuration (Section 5.4).
PILLARS = ((3, 3), (11, 3), (7, 5), (14, 6))

# (label, injection rate in packets/node/cycle)
OPERATING_POINTS = [
    ("low", 0.002),
    ("medium", 0.05),
    ("saturation", 0.2),
]

CYCLES = 1500
SEED = 5


def _measure(activity_tracking: bool, rate: float) -> dict:
    engine = Engine("bench", activity_tracking=activity_tracking)
    network = Network(
        NetworkConfig(width=16, height=8, layers=2, pillar_locations=PILLARS),
        engine=engine,
    )
    generator = UniformRandomTraffic(network, rate, seed=SEED)
    start = time.perf_counter()
    engine.run(CYCLES)
    elapsed = time.perf_counter() - start
    return {
        "cycles_per_sec": CYCLES / elapsed,
        "wall_seconds": elapsed,
        "packets_sent": generator.packets_sent,
        "ticks": engine.ticks,
        "fast_forwarded_cycles": engine.fast_forwarded_cycles,
        "final_cycle": engine.cycle,
    }


def test_kernel_throughput(once):
    def sweep():
        results = {}
        for label, rate in OPERATING_POINTS:
            naive = _measure(False, rate)
            tracked = _measure(True, rate)
            results[label] = {
                "injection_rate": rate,
                "naive": naive,
                "tracked": tracked,
                "speedup": tracked["cycles_per_sec"] / naive["cycles_per_sec"],
            }
        return results

    results = once(sweep)

    payload = {
        "benchmark": "kernel_throughput",
        "mesh": {"width": 16, "height": 8, "layers": 2, "pillars": PILLARS},
        "cycles": CYCLES,
        "results": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    for label, entry in results.items():
        # Identical workload under both kernels: same injections, same
        # final cycle, strictly less ticking work for the tracked kernel.
        assert entry["naive"]["packets_sent"] == entry["tracked"]["packets_sent"]
        assert entry["naive"]["final_cycle"] == entry["tracked"]["final_cycle"]
        assert entry["tracked"]["ticks"] <= entry["naive"]["ticks"]

    # Acceptance threshold: >=3x at the low operating point, where idle
    # fast-forwarding dominates.
    assert results["low"]["speedup"] >= 3.0, (
        f"tracked kernel only {results['low']['speedup']:.2f}x at low load"
    )
    # At saturation the kernels converge; bookkeeping overhead must stay
    # within noise (allow 25% slack for timer jitter on short runs).
    assert results["saturation"]["speedup"] >= 0.75

"""Bench: regenerate Table 3 (thermal profiles of CPU placements)."""

import pytest

from repro.experiments import table3


def test_table3_thermal(once):
    results = once(table3.run)
    profiles = {case.label: profile for case, profile in results}

    # Peak-temperature ordering across the 2-layer placements.
    assert (
        profiles["2D, maximal offset"].peak_c
        < profiles["3D-2L, offset k=1"].peak_c
        < profiles["3D-2L, CPU stacking"].peak_c
    )
    assert (
        profiles["3D-2L, offset k=2"].peak_c
        < profiles["3D-2L, offset k=1"].peak_c
    )
    assert (
        profiles["3D-4L, optimal offset"].peak_c
        < profiles["3D-4L, CPU stacking"].peak_c
    )

    # Averages depend on layer count only (same power, same footprint).
    two_layer = [p for c, p in results if "2L" in c.label]
    assert max(p.avg_c for p in two_layer) - min(
        p.avg_c for p in two_layer
    ) < 1.0
    assert (
        profiles["2D, maximal offset"].avg_c
        < two_layer[0].avg_c
        < profiles["3D-4L, optimal offset"].avg_c
    )

    # Absolute calibration against the paper, coarse band.
    for case, profile in results:
        assert profile.peak_c == pytest.approx(case.paper_peak, rel=0.12)
        assert profile.avg_c == pytest.approx(case.paper_avg, rel=0.05)

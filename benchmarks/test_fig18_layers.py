"""Bench: regenerate Figure 18 (L2 latency vs layer count)."""

from repro.experiments import fig18
from repro.experiments.config import QUICK

SUBSET = ("art", "swim")


def test_fig18_layer_count(once):
    results = once(fig18.run, benchmarks=SUBSET, scale=QUICK)
    for benchmark, row in results.items():
        # More layers shrink in-plane distances: latency drops.
        assert row[4] < row[2], benchmark
        # Paper: 3-8 cycles saved moving from 2 to 4 layers.
        saved = row[2] - row[4]
        assert 1.0 < saved < 35.0, (benchmark, saved)
